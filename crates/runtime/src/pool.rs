//! The worker-pool scheduler: many [`NodeCore`]s multiplexed over a
//! fixed number of OS threads, for 1k–10k-node sessions.
//!
//! `Scheduler::ThreadPerNode` spends one OS thread (plus stack, plus a
//! kernel scheduling slot) per node — fine at 50 nodes, hopeless at
//! 5000, and PAG's accountability argument is statistical, so the
//! reproduction *needs* gossip-scale sessions. This module replaces the
//! thread with a slot:
//!
//! * every node is a [`NodeCore`] parked in a **slot** holding its
//!   envelope inbox;
//! * a **run queue** holds the indices of slots with ready input
//!   (delivered frames, clock phases, timer-wheel wake-ups). A slot is
//!   enqueued when its inbox goes non-empty and never twice — the
//!   `Idle → Queued → Running` status in the slot makes scheduling
//!   idempotent and guarantees a core is stepped by one thread at a
//!   time;
//! * `threads` **pool workers** pop slots and drain their inboxes
//!   through the *same* envelope semantics as the dedicated-thread
//!   loop ([`NodeCore::lockstep_envelope`] /
//!   [`NodeCore::realtime_envelope`] — one copy of the code, shared);
//! * in **lockstep** mode the coordinator drives the identical barrier
//!   protocol over the identical quiescence ledger
//!   (`worker::drive_rounds` + [`Coordination`]), so pooled runs settle
//!   the same phases in the same order and produce bit-identical
//!   verdicts, deliveries, crypto ops and traffic — whatever the pool
//!   size (the scale suite pins `Pool(1) == Pool(n) == ThreadPerNode ==
//!   Simnet`);
//! * in **wall-clock** mode a shared **timer wheel** (one binary heap +
//!   one timekeeper thread) replaces the per-thread `recv_timeout`:
//!   after each step a core publishes its earliest deadline, and the
//!   timekeeper enqueues a [`Envelope::Wake`] when it passes.
//!
//! Crashed nodes are **retired**: their slot refuses new envelopes
//! (senders observe a closed link and balance the ledger, exactly like
//! a dead TCP peer) and the clock stops charging them barrier credits —
//! so a fail-stop crash can never wedge quiescence. Everything else —
//! transports, codec accounting, churn feeds, `NetEmulation` — is
//! untouched: the pool sits entirely behind the PR 4 `Link` boundary.
//! Architecture notes: DESIGN.md §11.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pag_membership::NodeId;

use crate::report::TrafficReport;
use crate::worker::{
    drive_rounds, panic_message, Charge, ClockSink, Coordination, DriverRun, Envelope, Link,
    NodeCore,
};

/// How a real-time driver maps nodes onto OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[derive(Default)]
pub enum Scheduler {
    /// One dedicated OS thread per node (the PR 2/PR 4 model). Simple
    /// and latency-optimal for small sessions; falls over around a
    /// thousand nodes.
    #[default]
    ThreadPerNode,
    /// A fixed-size worker pool multiplexing every node. The value is
    /// the thread count; `0` means "one per available CPU"
    /// ([`Scheduler::auto_pool`]). Lockstep outcomes are independent of
    /// the pool size.
    Pool(usize),
}


impl Scheduler {
    /// The pool sized to the machine: one worker per available CPU.
    pub fn auto_pool() -> Self {
        Scheduler::Pool(0)
    }

    /// Resolves a configured pool size to an actual thread count for a
    /// session of `nodes` nodes (0 = available parallelism; never more
    /// threads than nodes, never fewer than one).
    pub(crate) fn resolve_threads(size: usize, nodes: usize) -> usize {
        let size = if size == 0 {
            thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            size
        };
        size.min(nodes.max(1)).max(1)
    }
}

/// Scheduling status of one slot. The transitions make enqueueing
/// idempotent and stepping exclusive:
/// `Idle -(enqueue)-> Queued -(pop)-> Running -(inbox empty)-> Idle`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    Idle,
    Queued,
    Running,
}

/// The mutable half of a slot, behind one mutex so "push an envelope"
/// and "decide whether to schedule" are a single atomic step.
struct SlotInbox {
    queue: VecDeque<Envelope>,
    status: SlotStatus,
    /// A retired slot refuses envelopes forever (crashed node): senders
    /// see a closed link, the clock skips it.
    retired: bool,
    /// Wall-clock mode: the wake deadline currently published to the
    /// timer wheel (stale heap entries are skipped by comparing here).
    wake: Option<u64>,
    /// Traced sessions only: when the slot last went Idle → Queued.
    /// The span to the worker's pop is the per-slot run-queue wait —
    /// the barrier-stall signal the flight recorder histograms
    /// (DESIGN.md §14). `None` on untraced runs, so the hot enqueue
    /// path takes no timestamps there.
    queued_at: Option<Instant>,
}

struct Slot {
    inbox: Mutex<SlotInbox>,
}

/// Everything the pool's threads share: slots, run queue, timer wheel
/// and shutdown/abort state. Links and transport reader threads hold an
/// `Arc` of this to inject envelopes; the cores themselves are owned by
/// [`run_pool`], so dropping the run drops the nodes.
pub(crate) struct PoolQueues {
    slots: Vec<Slot>,
    run_queue: Mutex<VecDeque<usize>>,
    ready: Condvar,
    stop: AtomicBool,
    coord: Option<Arc<Coordination>>,
    /// Wall-clock mode: min-heap of (due scaled-ms, slot index).
    wheel: Mutex<BinaryHeap<Reverse<(u64, usize)>>>,
    wheel_cv: Condvar,
    /// Whether the session is traced: gates the run-queue-wait
    /// timestamps so untraced runs take none.
    traced: bool,
}

impl PoolQueues {
    pub(crate) fn new(nodes: usize, coord: Option<Arc<Coordination>>, traced: bool) -> Arc<Self> {
        Arc::new(PoolQueues {
            slots: (0..nodes)
                .map(|_| Slot {
                    inbox: Mutex::new(SlotInbox {
                        queue: VecDeque::new(),
                        status: SlotStatus::Idle,
                        retired: false,
                        wake: None,
                        queued_at: None,
                    }),
                })
                .collect(),
            run_queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            coord,
            wheel: Mutex::new(BinaryHeap::new()),
            wheel_cv: Condvar::new(),
            traced,
        })
    }

    /// Pushes one envelope into a slot's inbox and schedules the slot if
    /// it was idle. `false` means the envelope will never be processed —
    /// the slot is retired, or the pool has stopped (the channel
    /// scheduler's analogue is a dropped `Receiver`; refusing here is
    /// what makes a lingering TCP reader thread's `read_loop` return
    /// instead of feeding a dead slot forever). Callers with a ledger
    /// registration must balance it, exactly like a failed
    /// channel/socket send.
    pub(crate) fn enqueue(&self, idx: usize, envelope: Envelope) -> bool {
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        let mut inbox = self.slots[idx].inbox.lock().expect("slot inbox");
        if inbox.retired {
            return false;
        }
        inbox.queue.push_back(envelope);
        let newly_ready = inbox.status == SlotStatus::Idle;
        if newly_ready {
            inbox.status = SlotStatus::Queued;
            if self.traced {
                inbox.queued_at = Some(Instant::now());
            }
        }
        drop(inbox);
        if newly_ready {
            self.run_queue
                .lock()
                .expect("run queue")
                .push_back(idx);
            self.ready.notify_one();
        }
        true
    }

    /// Marks a slot retired (crashed node): no further envelopes are
    /// accepted or charged. Called by the pool worker currently draining
    /// the slot, which finishes the drain itself — so anything enqueued
    /// before retirement is still processed (and ledger-balanced).
    fn retire(&self, idx: usize) {
        self.slots[idx].inbox.lock().expect("slot inbox").retired = true;
    }

    /// Publishes a wall-clock wake deadline for a slot onto the shared
    /// timer wheel (keeping only the earliest pending one per slot).
    fn publish_wake(&self, idx: usize, wake: Option<u64>) {
        let Some(due) = wake else { return };
        {
            let mut inbox = self.slots[idx].inbox.lock().expect("slot inbox");
            if inbox.retired || inbox.wake.is_some_and(|w| w <= due) {
                return;
            }
            inbox.wake = Some(due);
        }
        // Inbox lock released before taking the wheel lock: the
        // timekeeper locks in the opposite order (wheel, then inbox).
        self.wheel
            .lock()
            .expect("timer wheel")
            .push(Reverse((due, idx)));
        self.wheel_cv.notify_one();
    }

    fn stop_now(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _rq = self.run_queue.lock().expect("run queue");
        self.ready.notify_all();
        drop(_rq);
        let _wheel = self.wheel.lock().expect("timer wheel");
        self.wheel_cv.notify_all();
    }
}

/// The channel transport's pooled [`Link`]: frames go straight into the
/// peer slot's inbox (no intermediate mpsc hop). Retired peers read as
/// closed links, which is how a crashed node's mail stops wedging
/// lockstep quiescence.
pub(crate) struct PoolLink {
    queues: Arc<PoolQueues>,
    index: Arc<BTreeMap<NodeId, usize>>,
}

impl PoolLink {
    pub(crate) fn new(queues: Arc<PoolQueues>, index: Arc<BTreeMap<NodeId, usize>>) -> Self {
        PoolLink { queues, index }
    }
}

impl Link for PoolLink {
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool {
        match self.index.get(&to) {
            Some(&idx) => self.queues.enqueue(idx, Envelope::Frame { bytes: frame }),
            None => false,
        }
    }
}

/// Where a transport reader thread forwards inbound envelopes: a
/// per-node mpsc channel (thread-per-node) or a pool slot. This is what
/// lets the TCP transport's per-stream readers feed either scheduler
/// without knowing which is running.
#[derive(Clone)]
pub(crate) enum InboxHandle {
    /// Thread-per-node: the worker's envelope channel.
    Channel(Sender<Envelope>),
    /// Pool: the shared queues plus this node's slot index.
    Pool(Arc<PoolQueues>, usize),
}

impl InboxHandle {
    /// Delivers one envelope; `false` when the node can no longer
    /// process it (stopped worker / retired slot).
    pub(crate) fn send(&self, envelope: Envelope) -> bool {
        match self {
            InboxHandle::Channel(tx) => tx.send(envelope).is_ok(),
            InboxHandle::Pool(queues, idx) => queues.enqueue(*idx, envelope),
        }
    }
}

/// The clock's view of the pool: one snapshot of the unretired slots
/// is both what the lockstep ledger is charged for and what the
/// fan-out targets — a slot that retires *between* the two (a crashing
/// node's `done()` releases the barrier before its pool thread flips
/// the retired flag) was charged, so its refused enqueue is balanced
/// with a `done()`; a slot retired at snapshot time is neither charged
/// nor targeted. Any other pairing would desynchronize the ledger and
/// either wedge `wait_quiet` or release a phase early. `Stop` is
/// swallowed — pool shutdown is the scheduler's job ([`run_pool`]
/// stops the threads once the clock returns), not a per-node envelope.
struct PoolClock<'a> {
    queues: &'a PoolQueues,
}

impl ClockSink for PoolClock<'_> {
    fn broadcast(&self, coord: Option<&Arc<Coordination>>, make: &dyn Fn() -> Envelope) {
        if matches!(make(), Envelope::Stop) {
            return;
        }
        let live: Vec<usize> = (0..self.queues.slots.len())
            .filter(|&idx| {
                !self.queues.slots[idx]
                    .inbox
                    .lock()
                    .expect("slot inbox")
                    .retired
            })
            .collect();
        if let Some(coord) = coord {
            coord.add(Charge::Gating, live.len() as u64);
        }
        for idx in live {
            if !self.queues.enqueue(idx, make()) {
                // Retired after the snapshot: charged above, so balance.
                if let Some(coord) = coord {
                    coord.done(Charge::Gating);
                }
            }
        }
    }
}

/// One pool worker: pop a ready slot, drain its inbox through the
/// shared envelope semantics, park it idle again.
fn pool_worker<L: Link>(
    queues: Arc<PoolQueues>,
    cores: Arc<Vec<Mutex<Option<NodeCore<L>>>>>,
    lockstep: bool,
    panics: Arc<Mutex<Vec<String>>>,
) {
    /// If this thread dies mid-step, name the node and unwedge both the
    /// lockstep coordinator (abort) and the sibling pool threads (stop),
    /// so the failure surfaces as a join-time panic, not a hang.
    struct AbortOnPanic {
        queues: Arc<PoolQueues>,
        panics: Arc<Mutex<Vec<String>>>,
        current: Option<NodeId>,
    }
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            if !thread::panicking() {
                return;
            }
            if let Ok(mut log) = self.panics.lock() {
                log.push(match self.current {
                    Some(id) => format!("node {id}"),
                    None => "no node being stepped".to_string(),
                });
            }
            if let Some(coord) = &self.queues.coord {
                coord.abort();
            }
            self.queues.stop_now();
        }
    }

    let mut guard = AbortOnPanic {
        queues: Arc::clone(&queues),
        panics,
        current: None,
    };

    loop {
        let idx = {
            let mut rq = queues.run_queue.lock().expect("run queue");
            loop {
                if let Some(idx) = rq.pop_front() {
                    break idx;
                }
                if queues.stop.load(Ordering::SeqCst) {
                    return;
                }
                rq = queues.ready.wait(rq).expect("ready wait");
            }
        };
        let queued_wait = {
            let mut inbox = queues.slots[idx].inbox.lock().expect("slot inbox");
            inbox.status = SlotStatus::Running;
            inbox.queued_at.take().map(|at| at.elapsed())
        };

        let mut cell = cores[idx].lock().expect("core cell");
        let core = cell
            .as_mut()
            .expect("scheduled slot holds its core until harvest");
        guard.current = Some(core.id);
        if let Some(wait) = queued_wait {
            core.note_wait(wait);
        }
        loop {
            let envelope = {
                let mut inbox = queues.slots[idx].inbox.lock().expect("slot inbox");
                match inbox.queue.pop_front() {
                    Some(envelope) => envelope,
                    None => {
                        // Empty-check and parking are one atomic step, so
                        // a concurrent enqueue either lands before this
                        // (and we keep draining) or finds Idle and
                        // re-schedules the slot.
                        inbox.status = SlotStatus::Idle;
                        break;
                    }
                }
            };
            if lockstep {
                let charge = core.lockstep_envelope(envelope);
                let coord = queues.coord.as_ref().expect("lockstep coordination");
                coord.publish_deadline(idx, core.next_deadline());
                coord.done(charge);
            } else {
                core.realtime_envelope(envelope);
                queues.publish_wake(idx, core.next_wake());
            }
            if core.crashed && core.down_forever() {
                // Fail-stop: off the run queue for good. The drain
                // continues so already-charged envelopes are consumed.
                // A node in a *transient* down window (fault-plan
                // crash-restart) keeps its slot: it must still receive
                // the clock's round envelopes to notice its restart.
                queues.retire(idx);
            }
        }
        guard.current = None;
    }
}

/// The timekeeper behind wall-clock pooled runs: one thread sleeping on
/// the shared wheel, waking slots whose earliest deadline passed. The
/// slot's published `wake` disambiguates stale heap entries (a slot
/// that re-armed earlier leaves its old entry to be skipped here).
fn timekeeper(queues: Arc<PoolQueues>, epoch: Instant) {
    let mut wheel = queues.wheel.lock().expect("timer wheel");
    loop {
        if queues.stop.load(Ordering::SeqCst) {
            return;
        }
        match wheel.peek().copied() {
            None => {
                wheel = queues.wheel_cv.wait(wheel).expect("wheel wait");
            }
            Some(Reverse((due, _))) => {
                let now = (Instant::now() - epoch).as_millis() as u64;
                if due > now {
                    let (w, _) = queues
                        .wheel_cv
                        .wait_timeout(wheel, Duration::from_millis(due - now))
                        .expect("wheel wait");
                    wheel = w;
                    continue;
                }
                let Some(Reverse((due, idx))) = wheel.pop() else {
                    continue;
                };
                let fire = {
                    let mut inbox = queues.slots[idx].inbox.lock().expect("slot inbox");
                    if inbox.wake == Some(due) {
                        inbox.wake = None;
                        true
                    } else {
                        false // stale entry: the slot re-armed or fired
                    }
                };
                if fire {
                    drop(wheel);
                    queues.enqueue(idx, Envelope::Wake);
                    wheel = queues.wheel.lock().expect("timer wheel");
                }
            }
        }
    }
}

/// Runs `cores` to completion on a pool of `threads` workers: spawns
/// the pool (plus the timekeeper in wall-clock mode), drives the shared
/// clock ([`drive_rounds`] — the same barrier protocol as
/// thread-per-node), runs `before_join` once the clock returns (the TCP
/// driver retires its accept threads there), then stops the pool and
/// harvests every core into a [`DriverRun`].
///
/// Worker-spawn refusals degrade gracefully: the pool runs on however
/// many threads the OS granted, as long as that is at least one.
/// `Err` (a typed setup error, never a panic) is reserved for a pool
/// that cannot make progress at all — zero workers, or no timekeeper in
/// wall-clock mode.
pub(crate) fn run_pool<L: Link + 'static>(
    cores: Vec<NodeCore<L>>,
    queues: Arc<PoolQueues>,
    threads: usize,
    epoch: Instant,
    rounds: u64,
    round_ms: u64,
    before_join: impl FnOnce(),
) -> Result<DriverRun, std::io::Error> {
    assert_eq!(cores.len(), queues.slots.len(), "one slot per core");
    let lockstep = queues.coord.is_some();
    let coord = queues.coord.clone();
    let cores: Arc<Vec<Mutex<Option<NodeCore<L>>>>> = Arc::new(
        cores
            .into_iter()
            .map(|core| Mutex::new(Some(core)))
            .collect(),
    );

    let panic_nodes: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(threads + 1);
    let mut spawn_err: Option<std::io::Error> = None;
    for t in 0..threads {
        let queues = Arc::clone(&queues);
        let cores = Arc::clone(&cores);
        let panic_nodes = Arc::clone(&panic_nodes);
        match thread::Builder::new()
            .name(format!("pag-pool-{t}"))
            .spawn(move || pool_worker(queues, cores, lockstep, panic_nodes))
        {
            Ok(handle) => handles.push(handle),
            Err(e) => spawn_err = Some(e),
        }
    }
    if handles.is_empty() {
        let e = spawn_err
            .unwrap_or_else(|| std::io::Error::other("pool sized to zero worker threads"));
        queues.stop_now();
        return Err(e);
    }
    if let Some(e) = spawn_err {
        pag_obs::logger::warn(
            "pool.degraded",
            format_args!("workers={} requested={threads} err={e}", handles.len()),
        );
    }
    if !lockstep {
        let queues_tk = Arc::clone(&queues);
        match thread::Builder::new()
            .name("pag-pool-timer".to_string())
            .spawn(move || timekeeper(queues_tk, epoch))
        {
            Ok(handle) => handles.push(handle),
            Err(e) => {
                // Without a timekeeper no wall-clock timer ever fires;
                // stop the workers and report instead of running a
                // session that silently loses every timeout.
                queues.stop_now();
                for handle in handles {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }

    drive_rounds(
        &PoolClock { queues: &queues },
        coord.as_ref(),
        epoch,
        rounds,
        round_ms,
    );
    before_join();
    queues.stop_now();

    let mut panics: Vec<String> = Vec::new();
    for handle in handles {
        if let Err(payload) = handle.join() {
            panics.push(panic_message(payload.as_ref()));
        }
    }
    if !panics.is_empty() {
        let nodes = panic_nodes.lock().map(|v| v.join(", ")).unwrap_or_default();
        panic!(
            "pool worker thread(s) panicked (while stepping: {nodes}) — {}",
            panics.join("; ")
        );
    }

    let mut per_node = BTreeMap::new();
    let mut engines = BTreeMap::new();
    for cell in cores.iter() {
        let core = cell
            .lock()
            .expect("core cell")
            .take()
            .expect("every core harvested exactly once");
        let result = core.finish();
        per_node.insert(result.id, result.traffic);
        engines.insert(result.id, result.engine);
    }
    Ok(DriverRun {
        report: TrafficReport {
            duration: rounds as f64,
            rounds,
            per_node,
        },
        engines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_resolves_pool_sizes() {
        assert_eq!(Scheduler::resolve_threads(4, 100), 4);
        assert_eq!(Scheduler::resolve_threads(16, 3), 3, "never more threads than nodes");
        assert_eq!(Scheduler::resolve_threads(5, 0), 1, "degenerate session still gets a thread");
        assert!(Scheduler::resolve_threads(0, 1000) >= 1, "auto resolves to the machine");
        assert_eq!(Scheduler::default(), Scheduler::ThreadPerNode);
        assert_eq!(Scheduler::auto_pool(), Scheduler::Pool(0));
    }

    #[test]
    fn enqueue_schedules_once_and_retirement_refuses() {
        let queues = PoolQueues::new(2, None, false);
        assert!(queues.enqueue(0, Envelope::Round(0)));
        assert!(queues.enqueue(0, Envelope::Flush));
        // One slot, two envelopes, one run-queue entry.
        assert_eq!(queues.run_queue.lock().expect("run queue lock").len(), 1);
        queues.retire(0);
        assert!(!queues.enqueue(0, Envelope::Round(1)), "retired slots refuse mail");
        assert!(queues.enqueue(1, Envelope::Round(1)), "other slots unaffected");
        // After shutdown every slot refuses — that refusal is what sends
        // a lingering transport reader thread home.
        queues.stop.store(true, Ordering::SeqCst);
        assert!(!queues.enqueue(1, Envelope::Round(2)), "stopped pools refuse mail");
    }
}
