//! The TCP driver: the sans-IO engine on real loopback sockets.
//!
//! Same per-node core as the threaded driver (`crate::worker`), but
//! the [`Link`] writes **length-prefixed codec frames to TCP streams**
//! (`pag_core::wire::encode_stream_frame`) and per-stream reader
//! threads reassemble them with `pag_core::wire::StreamFramer` before
//! funnelling them back into the node's envelope queue. Every byte a
//! node is charged for crosses the kernel's loopback path; nothing
//! about the protocol, timers, churn or crash semantics changes —
//! which is the point, and what the driver-equivalence suite pins down
//! (verdicts, deliveries and traffic totals identical to the simulator
//! and the channel driver, lockstep mode).
//!
//! Like the channel driver, the node side runs under either
//! [`Scheduler`]: dedicated worker threads, or the worker pool
//! (`crate::pool`) with readers forwarding into pool inboxes. Reader
//! and accept threads remain per-stream in both cases — the pool
//! removes the *node* threads, which is what dominates at scale.
//!
//! # Topology and lifecycle
//!
//! Each node binds a listener on `127.0.0.1:0`; the harness then
//! establishes a **full mesh of duplex streams** (one per node pair,
//! the lower id connecting) before any worker starts, so session
//! traffic never races connection setup. Establishment is fallible, not
//! panicking: every bind / connect / accept / configure step surfaces
//! as a typed [`TcpSetupError`] from [`run_tcp`] (and as
//! [`crate::session::SessionError`] one level up). After the mesh, each
//! listener keeps accepting: late connections are untrusted byte
//! sources whose frames travel the same framer → `decode_frame` →
//! deliver path — and fail it safely. Malformed or truncated input is
//! dropped and counted
//! ([`pag_core::engine::MetricEvent::FrameRejected`]); an oversized
//! length prefix kills the connection (stream sync is lost) after
//! counting one rejection. No input bytes can panic a node thread, and
//! a reader or accept thread that fails to *spawn* is logged and
//! counted (as a severed link), never a panic.
//!
//! Untrusted connections additionally carry a **rejected-frame budget**
//! ([`TcpConfig::reject_limit`]): a connection that keeps producing
//! undecodable or misrouted frames is severed once the budget is spent,
//! and the cut is counted
//! ([`pag_core::engine::MetricEvent::ConnectionDropped`]) — so a
//! hostile flood costs the node a bounded number of rejections instead
//! of one per hostile frame forever. Mesh streams carry only
//! peer-engine frames and skip the screen entirely.
//!
//! # Self-healing links (DESIGN.md §12)
//!
//! Each peer's write-half lives in a supervised **slot**. Severing a
//! link — via a scheduled [`TcpConfig::link_kills`] entry, or a failed
//! socket write — empties the slot, counts a
//! [`pag_core::engine::MetricEvent::LinkSevered`], and (in real-time
//! mode) spawns a reconnect supervisor: bounded exponential backoff
//! with seeded jitter, redialing the peer's listener. The redialed
//! stream arrives through the peer's accept thread as an untrusted
//! connection — same screen, same reject-don't-panic path — and the
//! healed slot counts a
//! [`pag_core::engine::MetricEvent::LinkReconnected`]. In **lockstep**
//! mode reconnection is disabled: a revived stream would inject frames
//! the quiescence ledger never registered and wedge (or corrupt) the
//! barrier accounting. Lockstep kills still work — both endpoints sever
//! at their own round entry, a quiescent point, so no registered frame
//! is ever in flight across the dying socket, and later sends to the
//! dead slot are refused and balanced by the worker's done-on-refused
//! path. That is how a lockstep session tolerates a down link without
//! wedging.
//!
//! Lockstep mode works unchanged over sockets because the quiescence
//! ledger brackets the socket transit: a sender registers its frame
//! with the coordinator *before* the `write`, and the receiving worker
//! marks it done only after processing, so barrier phases wait for
//! bytes still sitting in kernel buffers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pag_core::engine::PagEngine;
use pag_core::wire::{
    decode_frame, encode_stream_frame, StreamFramer, WireConfig, MAX_STREAM_FRAME_BYTES,
};
use pag_core::SharedContext;
use pag_membership::NodeId;

use crate::churn::ChurnEvent;
use crate::faults::FaultPlan;
use crate::pool::{run_pool, InboxHandle, PoolQueues, Scheduler};
use crate::worker::{
    down_windows, drive_rounds, join_workers, merged_feeds, Coordination, DriverRun, Envelope,
    Link, NetEmulation, NodeCore, Worker,
};

/// Outcome of a TCP run (same shape as every real-time driver).
pub type TcpRun = DriverRun;

/// Default [`TcpConfig::reject_limit`]: enough rejections to diagnose a
/// misbehaving peer in the metrics, small enough that a flood is cut
/// off within one scheduling quantum.
pub const DEFAULT_REJECT_LIMIT: u32 = 32;

/// First wait of the reconnect supervisor's backoff ladder (ms).
const RECONNECT_BASE_MS: u64 = 8;

/// Ceiling of the reconnect backoff ladder (ms).
const RECONNECT_MAX_MS: u64 = 256;

/// Redial attempts per sever before the supervisor gives up.
const RECONNECT_ATTEMPTS: u32 = 8;

/// Why TCP transport establishment failed. Surfaced by [`run_tcp`]
/// instead of panicking mid-setup; the session layer wraps it in
/// [`crate::session::SessionError`].
#[derive(Debug)]
pub enum TcpSetupError {
    /// Binding a node's loopback listener failed.
    Bind(std::io::Error),
    /// Reading a bound listener's local address failed.
    LocalAddr(std::io::Error),
    /// Dialing a peer's listener while pairing the mesh failed.
    Connect(std::io::Error),
    /// Accepting the matching mesh connection failed.
    Accept(std::io::Error),
    /// Configuring an established mesh stream (nodelay, or cloning the
    /// write half) failed.
    Configure(std::io::Error),
    /// Spawning a node worker thread failed.
    SpawnNode(std::io::Error),
}

impl std::fmt::Display for TcpSetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpSetupError::Bind(e) => write!(f, "could not bind loopback listener: {e}"),
            TcpSetupError::LocalAddr(e) => write!(f, "could not read listener address: {e}"),
            TcpSetupError::Connect(e) => write!(f, "could not connect mesh stream: {e}"),
            TcpSetupError::Accept(e) => write!(f, "could not accept mesh stream: {e}"),
            TcpSetupError::Configure(e) => write!(f, "could not configure mesh stream: {e}"),
            TcpSetupError::SpawnNode(e) => write!(f, "could not spawn node thread: {e}"),
        }
    }
}

impl std::error::Error for TcpSetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcpSetupError::Bind(e)
            | TcpSetupError::LocalAddr(e)
            | TcpSetupError::Connect(e)
            | TcpSetupError::Accept(e)
            | TcpSetupError::Configure(e)
            | TcpSetupError::SpawnNode(e) => Some(e),
        }
    }
}

/// Configuration of the TCP driver.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Wall-clock round duration in real-time mode (engine timer offsets
    /// scale by `round_ms / 1000`). Ignored in lockstep mode.
    pub round_ms: u64,
    /// Deterministic timer mode: virtual time with quiescence barriers
    /// instead of the wall clock (works over sockets; see module docs).
    /// Disables link self-healing — see the module docs' fault section.
    pub lockstep: bool,
    /// Session seed for the engines' deterministic randomness (and the
    /// reconnect supervisors' jitter).
    pub seed: u64,
    /// Optional latency/loss injection, applied in the worker exactly
    /// like the channel driver's (loss before the socket write, latency
    /// as a receive-side delay queue).
    pub net: Option<NetEmulation>,
    /// Upper bound on one stream frame; a length prefix above it is a
    /// framing violation that drops the connection. Senders enforce the
    /// same bound, so conforming peers never trip it.
    pub max_frame_bytes: usize,
    /// Rejected-frame budget per **untrusted** (post-mesh) connection:
    /// after this many undecodable or misrouted frames the connection
    /// is severed and counted as a
    /// [`pag_core::engine::MetricEvent::ConnectionDropped`]. Mesh
    /// streams are exempt (peer engines only produce clean frames).
    pub reject_limit: u32,
    /// Node-to-thread mapping: dedicated threads or a worker pool.
    pub scheduler: Scheduler,
    /// Scheduled transport-level link kills: `(a, b, round)` severs the
    /// socket between `a` and `b` when each endpoint enters `round` (a
    /// quiescent point in lockstep mode). Both directions die; in
    /// real-time mode each endpoint's supervisor then redials. This is
    /// a *transport* fault — unlike [`crate::faults`] cut windows it is
    /// invisible to the other drivers and excluded from equivalence.
    pub link_kills: Vec<(NodeId, NodeId, u64)>,
    /// Test/diagnostics hook: each node's bound listener address is sent
    /// here **after** the session mesh is fully established (so probes
    /// connecting in response can never be mistaken for mesh peers).
    pub addr_probe: Option<Sender<(NodeId, SocketAddr)>>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            round_ms: 1000,
            lockstep: true,
            seed: 0,
            net: None,
            max_frame_bytes: MAX_STREAM_FRAME_BYTES,
            reject_limit: DEFAULT_REJECT_LIMIT,
            scheduler: Scheduler::ThreadPerNode,
            link_kills: Vec::new(),
            addr_probe: None,
        }
    }
}

/// One peer's supervised connection: the write half lives in a slot
/// that severing empties and (real-time mode) a reconnect supervisor
/// refills by redialing `addr`.
struct PeerLink {
    slot: Arc<Mutex<Option<TcpStream>>>,
    addr: SocketAddr,
}

/// Locks a slot, riding out poisoning (a reader panicking elsewhere
/// must not cascade into the link).
fn lock_slot(slot: &Mutex<Option<TcpStream>>) -> std::sync::MutexGuard<'_, Option<TcpStream>> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The socket transport: one supervised write-half slot per peer, plus
/// the sever/reconnect counters the node core folds into its engine
/// metrics via `health_delta`.
struct TcpLink {
    owner: NodeId,
    peers: BTreeMap<NodeId, PeerLink>,
    max_frame: usize,
    /// Real-time mode only: severed slots get a reconnect supervisor.
    /// Off in lockstep — see the module docs' fault section.
    self_heal: bool,
    severed: Arc<AtomicU64>,
    reconnected: Arc<AtomicU64>,
    /// Session teardown flag (shared with the accept threads): stops
    /// supervisors from redialing a session that is over.
    stop: Arc<AtomicBool>,
    /// Deterministically seeded state for the supervisors' jitter.
    jitter_seed: u64,
}

impl TcpLink {
    /// Empties `to`'s slot (shutting the socket down), counts the
    /// sever, and in self-healing mode starts a reconnect supervisor.
    fn sever_slot(&mut self, to: NodeId) {
        let Some(peer) = self.peers.get(&to) else {
            return;
        };
        let Some(stream) = lock_slot(&peer.slot).take() else {
            return;
        };
        let _ = stream.shutdown(Shutdown::Both);
        self.severed.fetch_add(1, Ordering::SeqCst);
        if self.self_heal {
            self.supervise_reconnect(to);
        }
    }

    /// Spawns the detached reconnect supervisor for `to`: bounded
    /// exponential backoff (base 8ms, ceiling 256ms, 8 attempts) with
    /// seeded jitter, redialing the peer's listener. The redialed
    /// stream lands on the peer's accept thread as an untrusted
    /// connection; our side refills the slot and counts the heal.
    fn supervise_reconnect(&mut self, to: NodeId) {
        let Some(peer) = self.peers.get(&to) else {
            return;
        };
        let slot = Arc::clone(&peer.slot);
        let addr = peer.addr;
        let reconnected = Arc::clone(&self.reconnected);
        let stop = Arc::clone(&self.stop);
        // Advance the link's jitter state so consecutive severs of the
        // same pair don't retry in phase.
        self.jitter_seed = self
            .jitter_seed
            .rotate_left(17)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(to.0);
        let mut jitter = self.jitter_seed | 1;
        let spawned = thread::Builder::new()
            .name(format!("pag-tcp-heal-{}-{to}", self.owner))
            .spawn(move || {
                let mut backoff = RECONNECT_BASE_MS;
                for _ in 0..RECONNECT_ATTEMPTS {
                    // xorshift64 step: cheap, deterministic per seed.
                    jitter ^= jitter << 13;
                    jitter ^= jitter >> 7;
                    jitter ^= jitter << 17;
                    let wait = backoff + jitter % (backoff / 2 + 1);
                    thread::sleep(Duration::from_millis(wait));
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match TcpStream::connect(addr) {
                        Ok(stream) => {
                            let _ = stream.set_nodelay(true);
                            *lock_slot(&slot) = Some(stream);
                            reconnected.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                        Err(_) => backoff = (backoff * 2).min(RECONNECT_MAX_MS),
                    }
                }
            });
        if spawned.is_err() {
            eprintln!(
                "pag-tcp: node {} could not spawn reconnect supervisor for peer {to}",
                self.owner
            );
        }
    }
}

impl Link for TcpLink {
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool {
        let Some(peer) = self.peers.get(&to) else {
            return false;
        };
        // Over-bound frames cannot be produced by a correctly configured
        // session (the bound is shared with the receive side); treat one
        // like a closed link rather than poisoning the peer's stream.
        let Ok(encoded) = encode_stream_frame(&frame, self.max_frame) else {
            return false;
        };
        let mut slot = lock_slot(&peer.slot);
        let Some(stream) = slot.as_mut() else {
            // Severed and not (yet) healed: refuse, the worker's
            // done-on-refused path balances the lockstep ledger.
            return false;
        };
        if stream.write_all(&encoded).is_ok() {
            return true;
        }
        // The write half died under us: that is a sever, observed here.
        drop(slot);
        self.sever_slot(to);
        false
    }

    fn sever(&mut self, to: NodeId) {
        self.sever_slot(to);
    }

    fn health_delta(&mut self) -> (u64, u64) {
        (
            self.severed.swap(0, Ordering::SeqCst),
            self.reconnected.swap(0, Ordering::SeqCst),
        )
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        // Half-close every outbound stream so peer reader threads see
        // EOF and exit; the read halves of the same sockets stay open
        // until those peers half-close in turn.
        for peer in self.peers.values() {
            if let Some(stream) = lock_slot(&peer.slot).as_ref() {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }
}

/// The rejected-frame budget of one untrusted connection: the reader
/// pre-decodes each well-framed frame and, once `limit` of them have
/// proven undecodable or misrouted, cuts the connection instead of
/// letting the flood buy a rejection per frame forever.
struct RejectScreen {
    owner: NodeId,
    wire: WireConfig,
    limit: u32,
    rejected: u32,
}

/// One screened frame's verdict.
enum Screened {
    /// Decodes and is addressed to the owner: deliver normally.
    Clean,
    /// Undecodable or misrouted, budget not yet spent: count it (as a
    /// pre-decoded rejection — the worker must not decode it again).
    Bad,
    /// Undecodable or misrouted and the budget is spent: sever the
    /// connection.
    Flood,
}

impl RejectScreen {
    fn screen(&mut self, frame: &[u8]) -> Screened {
        let bad = match decode_frame(frame, &self.wire) {
            Ok(parsed) => parsed.to != self.owner,
            Err(_) => true,
        };
        if !bad {
            return Screened::Clean;
        }
        self.rejected += 1;
        if self.rejected > self.limit {
            Screened::Flood
        } else {
            Screened::Bad
        }
    }
}

/// Reads length-prefixed frames off one stream and forwards them to the
/// owning node's inbox. Truncated input simply waits (and EOF discards
/// it); a framing violation forwards one [`Envelope::Malformed`] so the
/// rejection is counted, then drops the connection — reframing after a
/// bogus length prefix is impossible.
///
/// `registered` distinguishes the lockstep ledger's two cases. Mesh
/// streams (`true`) carry frames a peer worker registered with the
/// coordinator *before* its socket write, so forwarding must not add
/// again. Late, untrusted connections (`false`) were registered by
/// nobody — the reader adds each envelope itself right before
/// forwarding, so the worker's unconditional `done()` stays balanced
/// and hostile bytes can never consume a legitimate frame's credit and
/// release a quiescence barrier early.
///
/// `screen` is `Some` exactly on untrusted connections: the
/// per-connection rejected-frame budget (see [`TcpConfig::reject_limit`]
/// and the module docs).
fn read_loop(
    mut stream: TcpStream,
    inbox: InboxHandle,
    coord: Option<Arc<Coordination>>,
    max_frame: usize,
    registered: bool,
    mut screen: Option<RejectScreen>,
) {
    let mut framer = StreamFramer::new(max_frame);
    let mut chunk = [0u8; 16 * 1024];
    let forward = |envelope: Envelope| -> bool {
        if !registered {
            if let Some(coord) = &coord {
                coord.add(1);
            }
        }
        if inbox.send(envelope) {
            return true;
        }
        // The worker is gone; balance the ledger for the envelope it
        // will never process (a peer's registration or the add above).
        if let Some(coord) = &coord {
            coord.done();
        }
        false
    };
    loop {
        loop {
            match framer.next_frame() {
                Ok(Some(frame)) => {
                    match screen.as_mut().map_or(Screened::Clean, |s| s.screen(&frame)) {
                        Screened::Flood => {
                            // Budget spent: sever the flooding
                            // connection, count the cut, and stop
                            // forwarding its frames.
                            let _ = forward(Envelope::ConnectionDropped);
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        Screened::Bad => {
                            // Already proven undecodable/misrouted:
                            // count the rejection without making the
                            // worker decode the bytes a second time.
                            if !forward(Envelope::Malformed) {
                                return;
                            }
                        }
                        Screened::Clean => {
                            if !forward(Envelope::Frame { bytes: frame }) {
                                return;
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // On a mesh stream this consumes the garbled frame's
                    // own registration; on an untrusted one `forward`
                    // adds first.
                    let _ = forward(Envelope::Malformed);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => framer.push(&chunk[..n]),
        }
    }
}

/// Runs `engines` for `rounds` rounds linked by real TCP streams over
/// loopback, under the configured [`Scheduler`].
///
/// Contract identical to [`crate::threaded::run_threaded`]: every
/// engine's node must belong to `shared`'s key roster, `crashes` are
/// fail-stop rounds, `churn` the scheduled membership changes, and
/// `faults` the session's compiled fault plan. Transport establishment
/// failures come back as a typed [`TcpSetupError`] instead of a panic.
pub fn run_tcp(
    shared: &Arc<SharedContext>,
    engines: Vec<PagEngine>,
    rounds: u64,
    crashes: &[(NodeId, u64)],
    churn: &[ChurnEvent],
    faults: &Arc<FaultPlan>,
    cfg: &TcpConfig,
) -> Result<TcpRun, TcpSetupError> {
    let ids: Vec<NodeId> = engines.iter().map(|e| e.id()).collect();
    let n = ids.len();
    let coord = cfg.lockstep.then(|| Arc::new(Coordination::new(n)));
    let round_ms = cfg.round_ms.max(1);
    let net_seed = cfg.seed ^ 0x4E45_5445_4D55;

    // Node inboxes: per-node channels (thread-per-node) or pool slots
    // (created after the mesh, alongside the epoch they are clocked by).
    let pool_size = match cfg.scheduler {
        Scheduler::ThreadPerNode => None,
        Scheduler::Pool(size) => Some(size),
    };
    let mut senders: BTreeMap<NodeId, Sender<Envelope>> = BTreeMap::new();
    let mut receivers = Vec::new();
    if pool_size.is_none() {
        for &id in &ids {
            let (tx, rx) = channel();
            senders.insert(id, tx);
            receivers.push(rx);
        }
    }

    // One loopback listener per node.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: BTreeMap<NodeId, SocketAddr> = BTreeMap::new();
    for &id in &ids {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(TcpSetupError::Bind)?;
        addrs.insert(
            id,
            listener.local_addr().map_err(TcpSetupError::LocalAddr)?,
        );
        listeners.push(listener);
    }

    // Full mesh of duplex streams, one per unordered node pair, paired
    // synchronously on this thread: connect i -> j, then accept on j's
    // listener — connects are sequential, so the accepted stream is
    // exactly the one just initiated and no identity handshake is
    // needed. Each side keeps a cloned write-half (for its TcpLink) and
    // the original as read-half (for its reader thread).
    let mut writes: Vec<BTreeMap<NodeId, TcpStream>> = (0..n).map(|_| BTreeMap::new()).collect();
    let mut reads: Vec<Vec<TcpStream>> = (0..n).map(|_| Vec::new()).collect();
    for j in 0..n {
        for i in 0..j {
            let initiated =
                TcpStream::connect(addrs[&ids[j]]).map_err(TcpSetupError::Connect)?;
            let (accepted, _) = listeners[j].accept().map_err(TcpSetupError::Accept)?;
            initiated.set_nodelay(true).map_err(TcpSetupError::Configure)?;
            accepted.set_nodelay(true).map_err(TcpSetupError::Configure)?;
            writes[i].insert(
                ids[j],
                initiated.try_clone().map_err(TcpSetupError::Configure)?,
            );
            reads[i].push(initiated);
            writes[j].insert(
                ids[i],
                accepted.try_clone().map_err(TcpSetupError::Configure)?,
            );
            reads[j].push(accepted);
        }
    }

    // The mesh is closed; only now advertise addresses (probes that
    // connect in response land on the accept threads below, never in
    // the mesh pairing above).
    if let Some(probe) = &cfg.addr_probe {
        for (&id, &addr) in &addrs {
            let _ = probe.send((id, addr));
        }
    }

    let queues = pool_size.map(|size| (size, PoolQueues::new(n, coord.clone())));
    let inbox_of = |idx: usize| -> InboxHandle {
        match &queues {
            Some((_, queues)) => InboxHandle::Pool(Arc::clone(queues), idx),
            None => InboxHandle::Channel(senders[&ids[idx]].clone()),
        }
    };

    // Per-node link health counters, shared between each node's TcpLink
    // and (for spawn failures) this setup path; the node core drains
    // them into its engine metrics every round.
    let severed: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let reconnected: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();

    // Reader threads: one per established inbound stream. Mesh peers
    // are trusted engines — no reject screen. A spawn failure is not a
    // panic: the inbound half of that link is simply dead, which we log
    // and count as a sever (the write half keeps working).
    for (idx, streams) in reads.into_iter().enumerate() {
        for stream in streams {
            let inbox = inbox_of(idx);
            let coord = coord.clone();
            let max = cfg.max_frame_bytes;
            let spawned = thread::Builder::new()
                .name(format!("pag-tcp-read-{}", ids[idx]))
                .spawn(move || read_loop(stream, inbox, coord, max, true, None));
            if spawned.is_err() {
                eprintln!(
                    "pag-tcp: node {} could not spawn a mesh reader thread; \
                     counting the inbound link as severed",
                    ids[idx]
                );
                severed[idx].fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    // Accept threads: keep each listener open for late (untrusted)
    // connections; their bytes go through the same reject-don't-panic
    // frame path, behind the per-connection rejected-frame budget. A
    // stop flag plus a wake-up connection ends them. Spawn failures —
    // of an accept thread, or of one of its per-connection readers —
    // are logged and counted, never panics.
    let stop_accepting = Arc::new(AtomicBool::new(false));
    let mut accept_handles = Vec::with_capacity(n);
    for (idx, listener) in listeners.into_iter().enumerate() {
        let inbox = inbox_of(idx);
        let owner = ids[idx];
        let coord = coord.clone();
        let stop = Arc::clone(&stop_accepting);
        let max = cfg.max_frame_bytes;
        let limit = cfg.reject_limit;
        let wire = shared.config.wire.clone();
        let spawned = thread::Builder::new()
            .name(format!("pag-tcp-accept-{}", ids[idx]))
            .spawn(move || loop {
                let Ok((conn, _)) = listener.accept() else {
                    return;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = conn.set_nodelay(true);
                let inbox = inbox.clone();
                let coord = coord.clone();
                let screen = RejectScreen {
                    owner,
                    wire: wire.clone(),
                    limit,
                    rejected: 0,
                };
                let closer = conn.try_clone().ok();
                let reader = thread::Builder::new()
                    .name(format!("pag-tcp-late-{owner}"))
                    .spawn(move || read_loop(conn, inbox, coord, max, false, Some(screen)));
                if reader.is_err() {
                    eprintln!(
                        "pag-tcp: node {owner} could not spawn a reader for a late \
                         connection; dropping it"
                    );
                    if let Some(closer) = closer {
                        let _ = closer.shutdown(Shutdown::Both);
                    }
                }
            });
        match spawned {
            Ok(handle) => accept_handles.push(handle),
            Err(_) => {
                eprintln!(
                    "pag-tcp: node {} could not spawn its accept thread; late \
                     connections to it will be refused",
                    ids[idx]
                );
                severed[idx].fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    // The epoch starts only now — after mesh setup and thread spawning —
    // so neither connection establishment nor spawning the ~n² reader
    // threads eats into round 0's real-time budget. The pool's timer
    // wheel is clocked by the same instant as the node cores (run_pool
    // passes it to the timekeeper alongside the queues).
    let epoch = Instant::now();

    // Retires the accept threads: unblock each listener with a throwaway
    // connection, then join. Runs before worker joins on both
    // schedulers, so a panicking node cannot leak n blocked accept
    // threads and their bound listeners. Setting the stop flag also
    // retires any in-flight reconnect supervisors.
    let probe_addrs: Vec<SocketAddr> = addrs.values().copied().collect();
    let stop_flag = Arc::clone(&stop_accepting);
    let stop_accepts = move || {
        stop_flag.store(true, Ordering::SeqCst);
        for addr in &probe_addrs {
            let _ = TcpStream::connect(addr);
        }
        for handle in accept_handles {
            let _ = handle.join();
        }
    };

    // One core per node, identical initial state for both schedulers.
    let cores: Vec<NodeCore<TcpLink>> = engines
        .into_iter()
        .enumerate()
        .map(|(idx, engine)| {
            let id = ids[idx];
            let peers = std::mem::take(&mut writes[idx])
                .into_iter()
                .map(|(peer, stream)| {
                    (
                        peer,
                        PeerLink {
                            slot: Arc::new(Mutex::new(Some(stream))),
                            addr: addrs[&peer],
                        },
                    )
                })
                .collect();
            let mut kills: Vec<(u64, NodeId)> = cfg
                .link_kills
                .iter()
                .filter_map(|&(a, b, round)| {
                    if a == id {
                        Some((round, b))
                    } else if b == id {
                        Some((round, a))
                    } else {
                        None
                    }
                })
                .collect();
            kills.sort_unstable();
            NodeCore::new(
                idx,
                id,
                engine,
                shared.config.wire.clone(),
                TcpLink {
                    owner: id,
                    peers,
                    max_frame: cfg.max_frame_bytes,
                    self_heal: !cfg.lockstep,
                    severed: Arc::clone(&severed[idx]),
                    reconnected: Arc::clone(&reconnected[idx]),
                    stop: Arc::clone(&stop_accepting),
                    jitter_seed: cfg.seed ^ 0x5E1F_4EA1 ^ (u64::from(id.0) << 32),
                },
                coord.clone(),
                down_windows(crashes, faults, id),
                merged_feeds(churn, faults, id),
                epoch,
                round_ms,
                cfg.net.clone(),
                net_seed,
                Arc::clone(faults),
                kills,
            )
        })
        .collect();

    Ok(match queues {
        None => {
            let mut handles = Vec::with_capacity(n);
            for (core, rx) in cores.into_iter().zip(receivers) {
                let id = core.id;
                let worker = Worker { core, rx };
                let handle = thread::Builder::new()
                    .name(format!("pag-tcp-{id}"))
                    .spawn(move || worker.run())
                    .map_err(TcpSetupError::SpawnNode)?;
                handles.push((id, handle));
            }

            drive_rounds(&senders, coord.as_ref(), epoch, rounds, round_ms);
            drop(senders);
            stop_accepts();
            join_workers(handles, rounds)
        }
        Some((size, queues)) => {
            let threads = Scheduler::resolve_threads(size, n);
            run_pool(cores, queues, threads, epoch, rounds, round_ms, stop_accepts)
        }
    })
}
