//! The TCP driver: the sans-IO engine on real loopback sockets.
//!
//! Same per-node core as the threaded driver (`crate::worker`), but
//! the [`Link`] writes **length-prefixed codec frames to TCP streams**
//! (`pag_core::wire::encode_stream_frame`) and per-stream reader
//! threads reassemble them with `pag_core::wire::StreamFramer` before
//! funnelling them back into the node's envelope queue. Every byte a
//! node is charged for crosses the kernel's loopback path; nothing
//! about the protocol, timers, churn or crash semantics changes —
//! which is the point, and what the three-driver equivalence suite
//! pins down (verdicts, deliveries and traffic totals identical to the
//! simulator and the channel driver, lockstep mode).
//!
//! Like the channel driver, the node side runs under either
//! [`Scheduler`]: dedicated worker threads, or the worker pool
//! (`crate::pool`) with readers forwarding into pool inboxes. Reader
//! and accept threads remain per-stream in both cases — the pool
//! removes the *node* threads, which is what dominates at scale.
//!
//! # Topology and lifecycle
//!
//! Each node binds a listener on `127.0.0.1:0`; the harness then
//! establishes a **full mesh of duplex streams** (one per node pair,
//! the lower id connecting) before any worker starts, so session
//! traffic never races connection setup. After the mesh, each listener
//! keeps accepting: late connections are untrusted byte sources whose
//! frames travel the same framer → `decode_frame` → deliver path — and
//! fail it safely. Malformed or truncated input is dropped and counted
//! ([`pag_core::engine::MetricEvent::FrameRejected`]); an oversized
//! length prefix kills the connection (stream sync is lost) after
//! counting one rejection. No input bytes can panic a node thread.
//!
//! Untrusted connections additionally carry a **rejected-frame budget**
//! ([`TcpConfig::reject_limit`]): a connection that keeps producing
//! undecodable or misrouted frames is severed once the budget is spent,
//! and the cut is counted
//! ([`pag_core::engine::MetricEvent::ConnectionDropped`]) — so a
//! hostile flood costs the node a bounded number of rejections instead
//! of one per hostile frame forever. Mesh streams carry only
//! peer-engine frames and skip the screen entirely.
//!
//! Lockstep mode works unchanged over sockets because the quiescence
//! ledger brackets the socket transit: a sender registers its frame
//! with the coordinator *before* the `write`, and the receiving worker
//! marks it done only after processing, so barrier phases wait for
//! bytes still sitting in kernel buffers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use pag_core::engine::PagEngine;
use pag_core::wire::{
    decode_frame, encode_stream_frame, StreamFramer, WireConfig, MAX_STREAM_FRAME_BYTES,
};
use pag_core::SharedContext;
use pag_membership::NodeId;

use crate::churn::ChurnEvent;
use crate::pool::{run_pool, InboxHandle, PoolQueues, Scheduler};
use crate::worker::{
    crash_round_of, drive_rounds, join_workers, Coordination, DriverRun, Envelope, Link,
    NetEmulation, NodeCore, Worker,
};

/// Outcome of a TCP run (same shape as every real-time driver).
pub type TcpRun = DriverRun;

/// Default [`TcpConfig::reject_limit`]: enough rejections to diagnose a
/// misbehaving peer in the metrics, small enough that a flood is cut
/// off within one scheduling quantum.
pub const DEFAULT_REJECT_LIMIT: u32 = 32;

/// Configuration of the TCP driver.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Wall-clock round duration in real-time mode (engine timer offsets
    /// scale by `round_ms / 1000`). Ignored in lockstep mode.
    pub round_ms: u64,
    /// Deterministic timer mode: virtual time with quiescence barriers
    /// instead of the wall clock (works over sockets; see module docs).
    pub lockstep: bool,
    /// Session seed for the engines' deterministic randomness.
    pub seed: u64,
    /// Optional latency/loss injection, applied in the worker exactly
    /// like the channel driver's (loss before the socket write, latency
    /// as a receive-side delay queue).
    pub net: Option<NetEmulation>,
    /// Upper bound on one stream frame; a length prefix above it is a
    /// framing violation that drops the connection. Senders enforce the
    /// same bound, so conforming peers never trip it.
    pub max_frame_bytes: usize,
    /// Rejected-frame budget per **untrusted** (post-mesh) connection:
    /// after this many undecodable or misrouted frames the connection
    /// is severed and counted as a
    /// [`pag_core::engine::MetricEvent::ConnectionDropped`]. Mesh
    /// streams are exempt (peer engines only produce clean frames).
    pub reject_limit: u32,
    /// Node-to-thread mapping: dedicated threads or a worker pool.
    pub scheduler: Scheduler,
    /// Test/diagnostics hook: each node's bound listener address is sent
    /// here **after** the session mesh is fully established (so probes
    /// connecting in response can never be mistaken for mesh peers).
    pub addr_probe: Option<Sender<(NodeId, SocketAddr)>>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            round_ms: 1000,
            lockstep: true,
            seed: 0,
            net: None,
            max_frame_bytes: MAX_STREAM_FRAME_BYTES,
            reject_limit: DEFAULT_REJECT_LIMIT,
            scheduler: Scheduler::ThreadPerNode,
            addr_probe: None,
        }
    }
}

/// The socket transport: one established write-half per peer.
struct TcpLink {
    peers: BTreeMap<NodeId, TcpStream>,
    max_frame: usize,
}

impl Link for TcpLink {
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool {
        let Some(stream) = self.peers.get_mut(&to) else {
            return false;
        };
        // Over-bound frames cannot be produced by a correctly configured
        // session (the bound is shared with the receive side); treat one
        // like a closed link rather than poisoning the peer's stream.
        let Ok(encoded) = encode_stream_frame(&frame, self.max_frame) else {
            return false;
        };
        stream.write_all(&encoded).is_ok()
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        // Half-close every outbound stream so peer reader threads see
        // EOF and exit; the read halves of the same sockets stay open
        // until those peers half-close in turn.
        for stream in self.peers.values() {
            let _ = stream.shutdown(Shutdown::Write);
        }
    }
}

/// The rejected-frame budget of one untrusted connection: the reader
/// pre-decodes each well-framed frame and, once `limit` of them have
/// proven undecodable or misrouted, cuts the connection instead of
/// letting the flood buy a rejection per frame forever.
struct RejectScreen {
    owner: NodeId,
    wire: WireConfig,
    limit: u32,
    rejected: u32,
}

/// One screened frame's verdict.
enum Screened {
    /// Decodes and is addressed to the owner: deliver normally.
    Clean,
    /// Undecodable or misrouted, budget not yet spent: count it (as a
    /// pre-decoded rejection — the worker must not decode it again).
    Bad,
    /// Undecodable or misrouted and the budget is spent: sever the
    /// connection.
    Flood,
}

impl RejectScreen {
    fn screen(&mut self, frame: &[u8]) -> Screened {
        let bad = match decode_frame(frame, &self.wire) {
            Ok(parsed) => parsed.to != self.owner,
            Err(_) => true,
        };
        if !bad {
            return Screened::Clean;
        }
        self.rejected += 1;
        if self.rejected > self.limit {
            Screened::Flood
        } else {
            Screened::Bad
        }
    }
}

/// Reads length-prefixed frames off one stream and forwards them to the
/// owning node's inbox. Truncated input simply waits (and EOF discards
/// it); a framing violation forwards one [`Envelope::Malformed`] so the
/// rejection is counted, then drops the connection — reframing after a
/// bogus length prefix is impossible.
///
/// `registered` distinguishes the lockstep ledger's two cases. Mesh
/// streams (`true`) carry frames a peer worker registered with the
/// coordinator *before* its socket write, so forwarding must not add
/// again. Late, untrusted connections (`false`) were registered by
/// nobody — the reader adds each envelope itself right before
/// forwarding, so the worker's unconditional `done()` stays balanced
/// and hostile bytes can never consume a legitimate frame's credit and
/// release a quiescence barrier early.
///
/// `screen` is `Some` exactly on untrusted connections: the
/// per-connection rejected-frame budget (see [`TcpConfig::reject_limit`]
/// and the module docs).
fn read_loop(
    mut stream: TcpStream,
    inbox: InboxHandle,
    coord: Option<Arc<Coordination>>,
    max_frame: usize,
    registered: bool,
    mut screen: Option<RejectScreen>,
) {
    let mut framer = StreamFramer::new(max_frame);
    let mut chunk = [0u8; 16 * 1024];
    let forward = |envelope: Envelope| -> bool {
        if !registered {
            if let Some(coord) = &coord {
                coord.add(1);
            }
        }
        if inbox.send(envelope) {
            return true;
        }
        // The worker is gone; balance the ledger for the envelope it
        // will never process (a peer's registration or the add above).
        if let Some(coord) = &coord {
            coord.done();
        }
        false
    };
    loop {
        loop {
            match framer.next_frame() {
                Ok(Some(frame)) => {
                    match screen.as_mut().map_or(Screened::Clean, |s| s.screen(&frame)) {
                        Screened::Flood => {
                            // Budget spent: sever the flooding
                            // connection, count the cut, and stop
                            // forwarding its frames.
                            let _ = forward(Envelope::ConnectionDropped);
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        Screened::Bad => {
                            // Already proven undecodable/misrouted:
                            // count the rejection without making the
                            // worker decode the bytes a second time.
                            if !forward(Envelope::Malformed) {
                                return;
                            }
                        }
                        Screened::Clean => {
                            if !forward(Envelope::Frame { bytes: frame }) {
                                return;
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // On a mesh stream this consumes the garbled frame's
                    // own registration; on an untrusted one `forward`
                    // adds first.
                    let _ = forward(Envelope::Malformed);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => framer.push(&chunk[..n]),
        }
    }
}

/// Runs `engines` for `rounds` rounds linked by real TCP streams over
/// loopback, under the configured [`Scheduler`].
///
/// Contract identical to [`crate::threaded::run_threaded`]: every
/// engine's node must belong to `shared`'s key roster, `crashes` are
/// fail-stop rounds and `churn` the scheduled membership changes.
pub fn run_tcp(
    shared: &Arc<SharedContext>,
    engines: Vec<PagEngine>,
    rounds: u64,
    crashes: &[(NodeId, u64)],
    churn: &[ChurnEvent],
    cfg: &TcpConfig,
) -> TcpRun {
    let ids: Vec<NodeId> = engines.iter().map(|e| e.id()).collect();
    let n = ids.len();
    let coord = cfg.lockstep.then(|| Arc::new(Coordination::new(n)));
    let round_ms = cfg.round_ms.max(1);
    let net_seed = cfg.seed ^ 0x4E45_5445_4D55;

    // Node inboxes: per-node channels (thread-per-node) or pool slots
    // (created after the mesh, alongside the epoch they are clocked by).
    let pooled = matches!(cfg.scheduler, Scheduler::Pool(_));
    let mut senders: BTreeMap<NodeId, Sender<Envelope>> = BTreeMap::new();
    let mut receivers = Vec::new();
    if !pooled {
        for &id in &ids {
            let (tx, rx) = channel();
            senders.insert(id, tx);
            receivers.push(rx);
        }
    }

    // One loopback listener per node.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: BTreeMap<NodeId, SocketAddr> = BTreeMap::new();
    for &id in &ids {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        addrs.insert(id, listener.local_addr().expect("listener address"));
        listeners.push(listener);
    }

    // Full mesh of duplex streams, one per unordered node pair, paired
    // synchronously on this thread: connect i -> j, then accept on j's
    // listener — connects are sequential, so the accepted stream is
    // exactly the one just initiated and no identity handshake is
    // needed. Each side keeps a cloned write-half (for its TcpLink) and
    // the original as read-half (for its reader thread).
    let mut writes: Vec<BTreeMap<NodeId, TcpStream>> =
        (0..n).map(|_| BTreeMap::new()).collect();
    let mut reads: Vec<Vec<TcpStream>> = (0..n).map(|_| Vec::new()).collect();
    for j in 0..n {
        for i in 0..j {
            let initiated = TcpStream::connect(addrs[&ids[j]]).expect("connect mesh stream");
            let (accepted, _) = listeners[j].accept().expect("accept mesh stream");
            initiated.set_nodelay(true).expect("set nodelay");
            accepted.set_nodelay(true).expect("set nodelay");
            writes[i].insert(ids[j], initiated.try_clone().expect("clone write half"));
            reads[i].push(initiated);
            writes[j].insert(ids[i], accepted.try_clone().expect("clone write half"));
            reads[j].push(accepted);
        }
    }

    // The mesh is closed; only now advertise addresses (probes that
    // connect in response land on the accept threads below, never in
    // the mesh pairing above).
    if let Some(probe) = &cfg.addr_probe {
        for (&id, &addr) in &addrs {
            let _ = probe.send((id, addr));
        }
    }

    let queues = pooled.then(|| PoolQueues::new(n, coord.clone()));
    let inbox_of = |idx: usize| -> InboxHandle {
        match &queues {
            Some(queues) => InboxHandle::Pool(Arc::clone(queues), idx),
            None => InboxHandle::Channel(senders[&ids[idx]].clone()),
        }
    };

    // Reader threads: one per established inbound stream. Mesh peers
    // are trusted engines — no reject screen.
    for (idx, streams) in reads.into_iter().enumerate() {
        for stream in streams {
            let inbox = inbox_of(idx);
            let coord = coord.clone();
            let max = cfg.max_frame_bytes;
            thread::Builder::new()
                .name(format!("pag-tcp-read-{}", ids[idx]))
                .spawn(move || read_loop(stream, inbox, coord, max, true, None))
                .expect("spawn reader thread");
        }
    }

    // Accept threads: keep each listener open for late (untrusted)
    // connections; their bytes go through the same reject-don't-panic
    // frame path, behind the per-connection rejected-frame budget. A
    // stop flag plus a wake-up connection ends them.
    let stop_accepting = Arc::new(AtomicBool::new(false));
    let mut accept_handles = Vec::with_capacity(n);
    for (idx, listener) in listeners.into_iter().enumerate() {
        let inbox = inbox_of(idx);
        let owner = ids[idx];
        let coord = coord.clone();
        let stop = Arc::clone(&stop_accepting);
        let max = cfg.max_frame_bytes;
        let limit = cfg.reject_limit;
        let wire = shared.config.wire.clone();
        let handle = thread::Builder::new()
            .name(format!("pag-tcp-accept-{}", ids[idx]))
            .spawn(move || loop {
                let Ok((conn, _)) = listener.accept() else {
                    return;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = conn.set_nodelay(true);
                let inbox = inbox.clone();
                let coord = coord.clone();
                let screen = RejectScreen {
                    owner,
                    wire: wire.clone(),
                    limit,
                    rejected: 0,
                };
                thread::spawn(move || {
                    read_loop(conn, inbox, coord, max, false, Some(screen))
                });
            })
            .expect("spawn accept thread");
        accept_handles.push(handle);
    }

    // The epoch starts only now — after mesh setup and thread spawning —
    // so neither connection establishment nor spawning the ~n² reader
    // threads eats into round 0's real-time budget. The pool's timer
    // wheel is clocked by the same instant as the node cores (run_pool
    // passes it to the timekeeper alongside the queues).
    let epoch = Instant::now();

    // Retires the accept threads: unblock each listener with a throwaway
    // connection, then join. Runs before worker joins on both
    // schedulers, so a panicking node cannot leak n blocked accept
    // threads and their bound listeners.
    let stop_accepts = move || {
        stop_accepting.store(true, Ordering::SeqCst);
        for addr in addrs.values() {
            let _ = TcpStream::connect(addr);
        }
        for handle in accept_handles {
            let _ = handle.join();
        }
    };

    // One core per node, identical initial state for both schedulers.
    let cores: Vec<NodeCore<TcpLink>> = engines
        .into_iter()
        .enumerate()
        .map(|(idx, engine)| {
            let id = ids[idx];
            NodeCore::new(
                idx,
                id,
                engine,
                shared.config.wire.clone(),
                TcpLink {
                    peers: std::mem::take(&mut writes[idx]),
                    max_frame: cfg.max_frame_bytes,
                },
                coord.clone(),
                crash_round_of(crashes, id),
                crate::churn::inputs_for(churn, id),
                epoch,
                round_ms,
                cfg.net.clone(),
                net_seed,
            )
        })
        .collect();

    match cfg.scheduler {
        Scheduler::ThreadPerNode => {
            let mut handles = Vec::with_capacity(n);
            for (core, rx) in cores.into_iter().zip(receivers) {
                let id = core.id;
                let worker = Worker { core, rx };
                let handle = thread::Builder::new()
                    .name(format!("pag-tcp-{id}"))
                    .spawn(move || worker.run())
                    .expect("spawn node thread");
                handles.push((id, handle));
            }

            drive_rounds(&senders, coord.as_ref(), epoch, rounds, round_ms);
            drop(senders);
            stop_accepts();
            join_workers(handles, rounds)
        }
        Scheduler::Pool(size) => {
            let queues = queues.expect("pool queues exist for pooled scheduler");
            let threads = Scheduler::resolve_threads(size, n);
            run_pool(cores, queues, threads, epoch, rounds, round_ms, stop_accepts)
        }
    }
}
