//! The TCP driver: the sans-IO engine on real loopback sockets.
//!
//! Same per-node core as the threaded driver (`crate::worker`), but
//! the [`Link`] writes **length-prefixed codec frames to TCP streams**
//! (`pag_core::wire::encode_stream_frame`) and per-stream reader
//! threads reassemble them with `pag_core::wire::StreamFramer` before
//! funnelling them back into the node's envelope queue. Every byte a
//! node is charged for crosses the kernel's loopback path; nothing
//! about the protocol, timers, churn or crash semantics changes —
//! which is the point, and what the driver-equivalence suite pins down
//! (verdicts, deliveries and traffic totals identical to the simulator
//! and the channel driver, lockstep mode).
//!
//! Like the channel driver, the node side runs under either
//! [`Scheduler`]: dedicated worker threads, or the worker pool
//! (`crate::pool`) with readers forwarding into pool inboxes. Reader
//! and accept threads remain per-stream in both cases — the pool
//! removes the *node* threads, which is what dominates at scale.
//!
//! # Topology and lifecycle
//!
//! Each node binds a listener on `127.0.0.1:0`; the harness then
//! establishes a **full mesh of duplex streams** (one per node pair,
//! the lower id connecting) before any worker starts, so session
//! traffic never races connection setup. Every stream is
//! **authenticated** before it carries a single protocol frame: a
//! challenge/response handshake (`pag_core::handshake`, DESIGN.md §13)
//! in which each side signs the channel binding — session id plus both
//! sides' fresh nonces — with its existing identity key. Handshake
//! bytes are connection setup, not protocol traffic, and are never
//! charged to [`crate::NodeTraffic`] (which is what keeps TCP runs
//! bit-identical to the other drivers). Establishment is fallible, not
//! panicking: every bind / connect / accept / configure / handshake
//! step surfaces as a typed [`TcpSetupError`] from [`run_tcp`] (and as
//! [`crate::session::SessionError`] one level up). After the mesh, each
//! listener keeps accepting: a late connection that opens with a
//! `HandshakeHello` gets the same challenge/response treatment (a
//! reconnecting peer proves its identity; a bad proof, replayed nonce
//! or wrong session id is answered with `HandshakeReject`, counted via
//! [`pag_core::engine::MetricEvent::HandshakeRejected`], and severed),
//! while any other late connection remains an untrusted byte source
//! whose frames travel the same framer → `decode_frame` → deliver path
//! — and fail it safely. Malformed or truncated input is
//! dropped and counted
//! ([`pag_core::engine::MetricEvent::FrameRejected`]); an oversized
//! length prefix kills the connection (stream sync is lost) after
//! counting one rejection. No input bytes can panic a node thread, and
//! a reader or accept thread that fails to *spawn* is logged and
//! counted (as a severed link), never a panic.
//!
//! Untrusted connections additionally carry a **rejected-frame budget**
//! ([`TcpConfig::reject_limit`]): a connection that keeps producing
//! undecodable or misrouted frames is severed once the budget is spent,
//! and the cut is counted
//! ([`pag_core::engine::MetricEvent::ConnectionDropped`]) — so a
//! hostile flood costs the node a bounded number of rejections instead
//! of one per hostile frame forever. Mesh streams carry only
//! peer-engine frames and skip the screen entirely.
//!
//! # Self-healing links (DESIGN.md §12)
//!
//! Each peer's write-half lives in a supervised **slot**. Severing a
//! link — via a scheduled [`TcpConfig::link_kills`] entry, or a failed
//! socket write — empties the slot, counts a
//! [`pag_core::engine::MetricEvent::LinkSevered`], and (in real-time
//! mode) spawns a reconnect supervisor: bounded exponential backoff
//! with seeded jitter, redialing the peer's listener. The redialed
//! stream arrives through the peer's accept thread as an untrusted
//! connection — same screen, same reject-don't-panic path — and the
//! healed slot counts a
//! [`pag_core::engine::MetricEvent::LinkReconnected`]. In **lockstep**
//! mode reconnection is disabled: a revived stream would inject frames
//! the quiescence ledger never registered and wedge (or corrupt) the
//! barrier accounting. Lockstep kills still work — both endpoints sever
//! at their own round entry, a quiescent point, so no registered frame
//! is ever in flight across the dying socket, and later sends to the
//! dead slot are refused and balanced by the worker's done-on-refused
//! path. That is how a lockstep session tolerates a down link without
//! wedging.
//!
//! Lockstep mode works unchanged over sockets because the quiescence
//! ledger brackets the socket transit: a sender registers its frame
//! with the coordinator *before* the `write`, and the receiving worker
//! marks it done only after processing, so barrier phases wait for
//! bytes still sitting in kernel buffers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pag_core::engine::PagEngine;
use pag_core::handshake::{self, HandshakeError};
use pag_core::messages::{MessageBody, SignedMessage};
use pag_core::wire::{
    decode_frame, encode_frame, encode_stream_frame, Frame, StreamFramer, WireConfig,
    MAX_STREAM_FRAME_BYTES,
};
use pag_core::SharedContext;
use pag_membership::NodeId;

use crate::churn::ChurnEvent;
use crate::faults::FaultPlan;
use crate::hooks::HostHooks;
use crate::pool::{run_pool, InboxHandle, PoolQueues, Scheduler};
use crate::worker::{
    down_windows, drive_rounds, join_workers, merged_feeds, Charge, Coordination, DriverRun,
    Envelope, Link, NetEmulation, NodeCore, Worker,
};

/// Outcome of a TCP run (same shape as every real-time driver).
pub type TcpRun = DriverRun;

/// Default [`TcpConfig::reject_limit`]: enough rejections to diagnose a
/// misbehaving peer in the metrics, small enough that a flood is cut
/// off within one scheduling quantum.
pub const DEFAULT_REJECT_LIMIT: u32 = 32;

/// First wait of the reconnect supervisor's backoff ladder (ms).
const RECONNECT_BASE_MS: u64 = 8;

/// Ceiling of the reconnect backoff ladder (ms).
const RECONNECT_MAX_MS: u64 = 256;

/// Redial attempts per sever before the supervisor gives up.
const RECONNECT_ATTEMPTS: u32 = 8;

/// Why TCP transport establishment failed. Surfaced by [`run_tcp`]
/// instead of panicking mid-setup; the session layer wraps it in
/// [`crate::session::SessionError`].
#[derive(Debug)]
pub enum TcpSetupError {
    /// Binding a node's loopback listener failed.
    Bind(std::io::Error),
    /// Reading a bound listener's local address failed.
    LocalAddr(std::io::Error),
    /// Dialing a peer's listener while pairing the mesh failed.
    Connect(std::io::Error),
    /// Accepting the matching mesh connection failed.
    Accept(std::io::Error),
    /// Configuring an established mesh stream (nodelay, or cloning the
    /// write half) failed.
    Configure(std::io::Error),
    /// Spawning a node worker thread failed.
    SpawnNode(std::io::Error),
    /// A mesh handshake failed verification: the channel-binding proof
    /// on a just-paired stream was refused. With both endpoints in this
    /// process that means a broken session profile (e.g. a wire config
    /// the codec refuses), not an attacker.
    Handshake(HandshakeError),
    /// A mesh handshake failed at the transport level: the stream died,
    /// produced unframeable bytes, or the handshake messages could not
    /// be encoded under the session's wire profile.
    HandshakeIo(std::io::Error),
}

impl std::fmt::Display for TcpSetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpSetupError::Bind(e) => write!(f, "could not bind loopback listener: {e}"),
            TcpSetupError::LocalAddr(e) => write!(f, "could not read listener address: {e}"),
            TcpSetupError::Connect(e) => write!(f, "could not connect mesh stream: {e}"),
            TcpSetupError::Accept(e) => write!(f, "could not accept mesh stream: {e}"),
            TcpSetupError::Configure(e) => write!(f, "could not configure mesh stream: {e}"),
            TcpSetupError::SpawnNode(e) => write!(f, "could not spawn node thread: {e}"),
            TcpSetupError::Handshake(e) => write!(f, "mesh handshake refused: {e}"),
            TcpSetupError::HandshakeIo(e) => write!(f, "mesh handshake failed: {e}"),
        }
    }
}

impl std::error::Error for TcpSetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcpSetupError::Bind(e)
            | TcpSetupError::LocalAddr(e)
            | TcpSetupError::Connect(e)
            | TcpSetupError::Accept(e)
            | TcpSetupError::Configure(e)
            | TcpSetupError::SpawnNode(e)
            | TcpSetupError::HandshakeIo(e) => Some(e),
            TcpSetupError::Handshake(e) => Some(e),
        }
    }
}

/// Configuration of the TCP driver.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Wall-clock round duration in real-time mode (engine timer offsets
    /// scale by `round_ms / 1000`). Ignored in lockstep mode.
    pub round_ms: u64,
    /// Deterministic timer mode: virtual time with quiescence barriers
    /// instead of the wall clock (works over sockets; see module docs).
    /// Disables link self-healing — see the module docs' fault section.
    pub lockstep: bool,
    /// Session seed for the engines' deterministic randomness (and the
    /// reconnect supervisors' jitter).
    pub seed: u64,
    /// Optional latency/loss injection, applied in the worker exactly
    /// like the channel driver's (loss before the socket write, latency
    /// as a receive-side delay queue).
    pub net: Option<NetEmulation>,
    /// Upper bound on one stream frame; a length prefix above it is a
    /// framing violation that drops the connection. Senders enforce the
    /// same bound, so conforming peers never trip it.
    pub max_frame_bytes: usize,
    /// Rejected-frame budget per **untrusted** (post-mesh) connection:
    /// after this many undecodable or misrouted frames the connection
    /// is severed and counted as a
    /// [`pag_core::engine::MetricEvent::ConnectionDropped`]. Mesh
    /// streams are exempt (peer engines only produce clean frames).
    pub reject_limit: u32,
    /// Node-to-thread mapping: dedicated threads or a worker pool.
    pub scheduler: Scheduler,
    /// Scheduled transport-level link kills: `(a, b, round)` severs the
    /// socket between `a` and `b` when each endpoint enters `round` (a
    /// quiescent point in lockstep mode). Both directions die; in
    /// real-time mode each endpoint's supervisor then redials. This is
    /// a *transport* fault — unlike [`crate::faults`] cut windows it is
    /// invisible to the other drivers and excluded from equivalence.
    pub link_kills: Vec<(NodeId, NodeId, u64)>,
    /// Test/diagnostics hook: each node's bound listener address is sent
    /// here **after** the session mesh is fully established (so probes
    /// connecting in response can never be mistaken for mesh peers).
    pub addr_probe: Option<Sender<(NodeId, SocketAddr)>>,
    /// Host integration hooks (snapshot vault, live status watch).
    /// Defaults to off; hooks never alter engine inputs.
    pub hooks: HostHooks,
    /// Lockstep round-pipelining window: how many rounds of exchanges
    /// may run ahead while earlier rounds' monitoring traffic drains.
    /// `0` (the default) is the classic fully-synchronous schedule;
    /// verdicts are window-independent by test. Ignored in real-time
    /// mode.
    pub pipeline_window: u64,
    /// Coalesce same-destination frames of a lockstep phase into one
    /// container frame (membership frames always travel alone). Off by
    /// default; affects wire framing only, never outcomes.
    pub coalesce: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            round_ms: 1000,
            lockstep: true,
            seed: 0,
            net: None,
            max_frame_bytes: MAX_STREAM_FRAME_BYTES,
            reject_limit: DEFAULT_REJECT_LIMIT,
            scheduler: Scheduler::ThreadPerNode,
            link_kills: Vec::new(),
            addr_probe: None,
            hooks: HostHooks::default(),
            pipeline_window: 0,
            coalesce: false,
        }
    }
}

/// Salt folded into the session seed for handshake nonce generation,
/// so nonces never collide with any other seeded stream in the run.
const HANDSHAKE_NONCE_SALT: u64 = 0x4841_4E44_5348_4B45;

/// A fresh per-connection handshake nonce: the session-global counter
/// guarantees uniqueness within the run (which is what defeats proof
/// replay), the seeded mix decorrelates the values.
fn fresh_nonce(seed: u64, counter: &AtomicU64) -> u64 {
    pag_membership::mix(seed ^ HANDSHAKE_NONCE_SALT ^ counter.fetch_add(1, Ordering::SeqCst))
}

/// Writes one length-prefixed handshake frame (`from` → `to`) to a
/// stream. Encode failures mean the session's wire profile refuses its
/// own handshake messages — a setup error, not an attack.
fn send_handshake(
    stream: &mut TcpStream,
    wire: &WireConfig,
    from: NodeId,
    to: NodeId,
    msg: &SignedMessage,
    max_frame: usize,
) -> std::io::Result<()> {
    let frame = encode_frame(from, to, msg, wire)
        .map_err(|e| std::io::Error::other(format!("unencodable handshake frame: {e}")))?;
    let encoded = encode_stream_frame(&frame, max_frame)
        .map_err(|e| std::io::Error::other(format!("oversized handshake frame: {e}")))?;
    stream.write_all(&encoded)
}

/// What one blocking pull of the next length-prefixed frame yielded.
enum Pulled {
    /// A complete frame's bytes.
    Frame(Vec<u8>),
    /// Clean end of stream (or a read error — equivalent here).
    Eof,
    /// A framing violation: the length prefix exceeds the bound, so
    /// stream sync is unrecoverable.
    Violation,
}

/// Blocks until the framer yields one complete frame (reading more
/// bytes as needed), EOF, or a framing violation.
fn pull_frame(stream: &mut TcpStream, framer: &mut StreamFramer, chunk: &mut [u8]) -> Pulled {
    loop {
        match framer.next_frame() {
            Ok(Some(frame)) => return Pulled::Frame(frame),
            Ok(None) => {}
            Err(_) => return Pulled::Violation,
        }
        match stream.read(chunk) {
            Ok(0) | Err(_) => return Pulled::Eof,
            Ok(n) => framer.push(&chunk[..n]),
        }
    }
}

/// Pulls and decodes the next frame during a setup-time handshake,
/// mapping every failure mode to a typed setup error.
fn recv_handshake(
    stream: &mut TcpStream,
    framer: &mut StreamFramer,
    wire: &WireConfig,
) -> Result<Frame, TcpSetupError> {
    let mut chunk = [0u8; 4096];
    match pull_frame(stream, framer, &mut chunk) {
        Pulled::Frame(bytes) => decode_frame(&bytes, wire).map_err(|e| {
            TcpSetupError::HandshakeIo(std::io::Error::other(format!(
                "undecodable handshake frame: {e}"
            )))
        }),
        Pulled::Eof => Err(TcpSetupError::HandshakeIo(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "stream closed during handshake",
        ))),
        Pulled::Violation => Err(TcpSetupError::HandshakeIo(std::io::Error::other(
            "framing violation during handshake",
        ))),
    }
}

/// Runs the authenticated handshake over one just-paired mesh stream,
/// driving **both** endpoints from the setup thread (the frames are far
/// smaller than loopback socket buffers, so the explicit interleave
/// below can never deadlock):
///
/// 1. dialer and listener exchange `HandshakeHello` (identity + nonce);
/// 2. dialer proves first, then the listener proves back and confirms
///    with `HandshakeAccept`.
///
/// Either side refusing a proof is a [`TcpSetupError::Handshake`] — in
/// the in-process mesh that indicates a broken session profile, and the
/// same verification code is what [`listener_handshake`] applies to
/// genuinely untrusted late connections.
#[allow(clippy::too_many_arguments)]
fn mesh_handshake(
    dialer_stream: &mut TcpStream,
    listener_stream: &mut TcpStream,
    shared: &SharedContext,
    dialer: NodeId,
    listener: NodeId,
    dialer_nonce: u64,
    listener_nonce: u64,
    max_frame: usize,
) -> Result<(), TcpSetupError> {
    let wire = &shared.config.wire;
    let mut dialer_framer = StreamFramer::new(max_frame);
    let mut listener_framer = StreamFramer::new(max_frame);
    let send = |stream: &mut TcpStream, from: NodeId, to: NodeId, msg: &SignedMessage| {
        send_handshake(stream, wire, from, to, msg, max_frame).map_err(TcpSetupError::HandshakeIo)
    };

    // Hellos cross: each side advertises its identity and challenge.
    send(
        dialer_stream,
        dialer,
        listener,
        &handshake::hello(shared, dialer, dialer_nonce),
    )?;
    let frame = recv_handshake(listener_stream, &mut listener_framer, wire)?;
    let (d_id, d_nonce) = handshake::read_hello(shared, &frame).map_err(TcpSetupError::Handshake)?;
    send(
        listener_stream,
        listener,
        dialer,
        &handshake::hello(shared, listener, listener_nonce),
    )?;
    let frame = recv_handshake(dialer_stream, &mut dialer_framer, wire)?;
    let (l_id, l_nonce) = handshake::read_hello(shared, &frame).map_err(TcpSetupError::Handshake)?;

    // The dialer proves first; the listener verifies, proves back, and
    // confirms.
    send(
        dialer_stream,
        dialer,
        listener,
        &handshake::proof(shared, dialer, l_nonce, dialer_nonce),
    )?;
    let frame = recv_handshake(listener_stream, &mut listener_framer, wire)?;
    handshake::verify_proof(shared, &frame, d_id, listener_nonce, d_nonce)
        .map_err(TcpSetupError::Handshake)?;
    send(
        listener_stream,
        listener,
        dialer,
        &handshake::proof(shared, listener, d_nonce, listener_nonce),
    )?;
    send(
        listener_stream,
        listener,
        dialer,
        &handshake::accept(shared, listener),
    )?;
    let frame = recv_handshake(dialer_stream, &mut dialer_framer, wire)?;
    handshake::verify_proof(shared, &frame, l_id, dialer_nonce, l_nonce)
        .map_err(TcpSetupError::Handshake)?;
    let frame = recv_handshake(dialer_stream, &mut dialer_framer, wire)?;
    if !matches!(frame.msg.body, MessageBody::HandshakeAccept { .. }) {
        return Err(TcpSetupError::Handshake(HandshakeError::WrongMessage));
    }
    Ok(())
}

/// The dialer side of the handshake on a **redialed** stream (reconnect
/// supervisor): hello, read the peer's hello, prove, verify the peer's
/// proof, read the accept. `Err` means the heal attempt failed — the
/// supervisor backs off and retries, exactly like a refused connect.
fn dialer_handshake(
    stream: &mut TcpStream,
    shared: &SharedContext,
    owner: NodeId,
    peer: NodeId,
    our_nonce: u64,
    max_frame: usize,
) -> Result<(), ()> {
    let wire = &shared.config.wire;
    let mut framer = StreamFramer::new(max_frame);
    let mut chunk = [0u8; 4096];
    let mut recv = |stream: &mut TcpStream, framer: &mut StreamFramer| -> Result<Frame, ()> {
        match pull_frame(stream, framer, &mut chunk) {
            Pulled::Frame(bytes) => decode_frame(&bytes, wire).map_err(|_| ()),
            Pulled::Eof | Pulled::Violation => Err(()),
        }
    };

    send_handshake(
        stream,
        wire,
        owner,
        peer,
        &handshake::hello(shared, owner, our_nonce),
        max_frame,
    )
    .map_err(|_| ())?;
    let frame = recv(stream, &mut framer)?;
    let (l_id, l_nonce) = handshake::read_hello(shared, &frame).map_err(|_| ())?;
    if l_id != peer {
        return Err(());
    }
    send_handshake(
        stream,
        wire,
        owner,
        peer,
        &handshake::proof(shared, owner, l_nonce, our_nonce),
        max_frame,
    )
    .map_err(|_| ())?;
    let frame = recv(stream, &mut framer)?;
    handshake::verify_proof(shared, &frame, peer, our_nonce, l_nonce).map_err(|_| ())?;
    let frame = recv(stream, &mut framer)?;
    if matches!(frame.msg.body, MessageBody::HandshakeAccept { .. }) {
        Ok(())
    } else {
        Err(())
    }
}

/// Everything a late-connection reader needs to *listener*-authenticate
/// a peer that opens with `HandshakeHello` (a reconnecting node, or a
/// second host's dialer). Connections that open with anything else stay
/// on the legacy screened path.
struct LateAuth {
    shared: Arc<SharedContext>,
    owner: NodeId,
    nonce_counter: Arc<AtomicU64>,
    seed: u64,
    max_frame: usize,
}

/// The listener side of the handshake on an untrusted late connection,
/// entered when its first frame decoded to a `HandshakeHello`.
///
/// `Err(Some(e))` — the peer was *refused* (bad proof, replayed nonce,
/// wrong session, off-roster identity): a `HandshakeReject` naming the
/// reason is sent back (best-effort) and the caller counts the
/// rejection and severs. `Err(None)` — the connection died mid-exchange
/// (nothing to count beyond the drop itself). `Ok(peer)` — the
/// connection is now authenticated as `peer`.
fn listener_handshake(
    stream: &mut TcpStream,
    framer: &mut StreamFramer,
    chunk: &mut [u8],
    auth: &LateAuth,
    hello: &Frame,
) -> Result<NodeId, Option<HandshakeError>> {
    let shared = auth.shared.as_ref();
    let wire = &shared.config.wire;
    let refuse = |stream: &mut TcpStream, to: NodeId, e: HandshakeError| {
        let msg = handshake::reject(shared, auth.owner, e);
        let _ = send_handshake(stream, wire, auth.owner, to, &msg, auth.max_frame);
        Err(Some(e))
    };

    let (peer, their_nonce) = match handshake::read_hello(shared, hello) {
        Ok(read) => read,
        Err(e) => return refuse(stream, hello.from, e),
    };
    let our_nonce = fresh_nonce(auth.seed, &auth.nonce_counter);
    send_handshake(
        stream,
        wire,
        auth.owner,
        peer,
        &handshake::hello(shared, auth.owner, our_nonce),
        auth.max_frame,
    )
    .map_err(|_| None)?;
    let proof_frame = match pull_frame(stream, framer, chunk) {
        Pulled::Frame(bytes) => match decode_frame(&bytes, wire) {
            Ok(frame) => frame,
            Err(_) => return refuse(stream, peer, HandshakeError::WrongMessage),
        },
        Pulled::Eof | Pulled::Violation => return Err(None),
    };
    match handshake::verify_proof(shared, &proof_frame, peer, our_nonce, their_nonce) {
        Ok(authenticated) => {
            send_handshake(
                stream,
                wire,
                auth.owner,
                authenticated,
                &handshake::proof(shared, auth.owner, their_nonce, our_nonce),
                auth.max_frame,
            )
            .map_err(|_| None)?;
            send_handshake(
                stream,
                wire,
                auth.owner,
                authenticated,
                &handshake::accept(shared, auth.owner),
                auth.max_frame,
            )
            .map_err(|_| None)?;
            Ok(authenticated)
        }
        Err(e) => refuse(stream, peer, e),
    }
}

/// One peer's supervised connection: the write half lives in a slot
/// that severing empties and (real-time mode) a reconnect supervisor
/// refills by redialing `addr`.
struct PeerLink {
    slot: Arc<Mutex<Option<TcpStream>>>,
    addr: SocketAddr,
}

/// Locks a slot, riding out poisoning (a reader panicking elsewhere
/// must not cascade into the link).
fn lock_slot(slot: &Mutex<Option<TcpStream>>) -> std::sync::MutexGuard<'_, Option<TcpStream>> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The socket transport: one supervised write-half slot per peer, plus
/// the sever/reconnect counters the node core folds into its engine
/// metrics via `health_delta`.
struct TcpLink {
    owner: NodeId,
    peers: BTreeMap<NodeId, PeerLink>,
    max_frame: usize,
    /// Real-time mode only: severed slots get a reconnect supervisor.
    /// Off in lockstep — see the module docs' fault section.
    self_heal: bool,
    severed: Arc<AtomicU64>,
    reconnected: Arc<AtomicU64>,
    /// Session teardown flag (shared with the accept threads): stops
    /// supervisors from redialing a session that is over.
    stop: Arc<AtomicBool>,
    /// Deterministically seeded state for the supervisors' jitter.
    jitter_seed: u64,
    /// Session context for the reconnect supervisors' dialer handshake
    /// (a redialed stream is untrusted to the peer until proven).
    shared: Arc<SharedContext>,
    /// Session-global handshake nonce counter (uniqueness defeats
    /// proof replay).
    nonce_counter: Arc<AtomicU64>,
    /// Session seed for handshake nonce mixing.
    seed: u64,
}

impl TcpLink {
    /// Empties `to`'s slot (shutting the socket down), counts the
    /// sever, and in self-healing mode starts a reconnect supervisor.
    fn sever_slot(&mut self, to: NodeId) {
        let Some(peer) = self.peers.get(&to) else {
            return;
        };
        let Some(stream) = lock_slot(&peer.slot).take() else {
            return;
        };
        let _ = stream.shutdown(Shutdown::Both);
        self.severed.fetch_add(1, Ordering::SeqCst);
        if self.self_heal {
            self.supervise_reconnect(to);
        }
    }

    /// Spawns the detached reconnect supervisor for `to`: bounded
    /// exponential backoff (base 8ms, ceiling 256ms, 8 attempts) with
    /// seeded jitter, redialing the peer's listener. The redialed
    /// stream lands on the peer's accept thread as an **untrusted**
    /// connection, so the supervisor must re-authenticate: it runs the
    /// dialer handshake (hello/proof/accept) against the peer's late
    /// reader, and only a proven stream refills the slot and counts the
    /// heal. A refused or broken handshake backs off like a refused
    /// connect.
    fn supervise_reconnect(&mut self, to: NodeId) {
        let Some(peer) = self.peers.get(&to) else {
            return;
        };
        let slot = Arc::clone(&peer.slot);
        let addr = peer.addr;
        let reconnected = Arc::clone(&self.reconnected);
        let stop = Arc::clone(&self.stop);
        let shared = Arc::clone(&self.shared);
        let nonce_counter = Arc::clone(&self.nonce_counter);
        let owner = self.owner;
        let seed = self.seed;
        let max_frame = self.max_frame;
        // Advance the link's jitter state so consecutive severs of the
        // same pair don't retry in phase.
        self.jitter_seed = self
            .jitter_seed
            .rotate_left(17)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(to.0);
        let mut jitter = self.jitter_seed | 1;
        let spawned = thread::Builder::new()
            .name(format!("pag-tcp-heal-{}-{to}", self.owner))
            .spawn(move || {
                let mut backoff = RECONNECT_BASE_MS;
                for _ in 0..RECONNECT_ATTEMPTS {
                    // xorshift64 step: cheap, deterministic per seed.
                    jitter ^= jitter << 13;
                    jitter ^= jitter >> 7;
                    jitter ^= jitter << 17;
                    let wait = backoff + jitter % (backoff / 2 + 1);
                    thread::sleep(Duration::from_millis(wait));
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match TcpStream::connect(addr) {
                        Ok(mut stream) => {
                            let _ = stream.set_nodelay(true);
                            let nonce = fresh_nonce(seed, &nonce_counter);
                            // No other thread touches this socket until
                            // the slot is refilled, and the peer writes
                            // on it only during the handshake — so the
                            // supervisor can safely read the replies.
                            if dialer_handshake(
                                &mut stream, &shared, owner, to, nonce, max_frame,
                            )
                            .is_ok()
                            {
                                *lock_slot(&slot) = Some(stream);
                                reconnected.fetch_add(1, Ordering::SeqCst);
                                return;
                            }
                            backoff = (backoff * 2).min(RECONNECT_MAX_MS);
                        }
                        Err(_) => backoff = (backoff * 2).min(RECONNECT_MAX_MS),
                    }
                }
            });
        if spawned.is_err() {
            pag_obs::logger::warn(
                "tcp.heal_spawn",
                format_args!("node={} peer={to} could not spawn reconnect supervisor", self.owner),
            );
        }
    }
}

impl Link for TcpLink {
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool {
        let Some(peer) = self.peers.get(&to) else {
            return false;
        };
        // Over-bound frames cannot be produced by a correctly configured
        // session (the bound is shared with the receive side); treat one
        // like a closed link rather than poisoning the peer's stream.
        let Ok(encoded) = encode_stream_frame(&frame, self.max_frame) else {
            return false;
        };
        let mut slot = lock_slot(&peer.slot);
        let Some(stream) = slot.as_mut() else {
            // Severed and not (yet) healed: refuse, the worker's
            // done-on-refused path balances the lockstep ledger.
            return false;
        };
        if stream.write_all(&encoded).is_ok() {
            return true;
        }
        // The write half died under us: that is a sever, observed here.
        drop(slot);
        self.sever_slot(to);
        false
    }

    fn sever(&mut self, to: NodeId) {
        self.sever_slot(to);
    }

    fn health_delta(&mut self) -> (u64, u64) {
        (
            self.severed.swap(0, Ordering::SeqCst),
            self.reconnected.swap(0, Ordering::SeqCst),
        )
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        // Half-close every outbound stream so peer reader threads see
        // EOF and exit; the read halves of the same sockets stay open
        // until those peers half-close in turn.
        for peer in self.peers.values() {
            if let Some(stream) = lock_slot(&peer.slot).as_ref() {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }
}

/// The rejected-frame budget of one untrusted connection: the reader
/// pre-decodes each well-framed frame and, once `limit` of them have
/// proven undecodable or misrouted, cuts the connection instead of
/// letting the flood buy a rejection per frame forever.
struct RejectScreen {
    owner: NodeId,
    wire: WireConfig,
    limit: u32,
    rejected: u32,
}

/// One screened frame's verdict.
enum Screened {
    /// Decodes and is addressed to the owner: deliver normally.
    Clean,
    /// Undecodable or misrouted, budget not yet spent: count it (as a
    /// pre-decoded rejection — the worker must not decode it again).
    Bad,
    /// Undecodable or misrouted and the budget is spent: sever the
    /// connection.
    Flood,
}

impl RejectScreen {
    fn screen(&mut self, frame: &[u8]) -> Screened {
        let bad = match decode_frame(frame, &self.wire) {
            Ok(parsed) => parsed.to != self.owner,
            Err(_) => true,
        };
        if !bad {
            return Screened::Clean;
        }
        self.rejected += 1;
        if self.rejected > self.limit {
            Screened::Flood
        } else {
            Screened::Bad
        }
    }
}

/// Reads length-prefixed frames off one stream and forwards them to the
/// owning node's inbox. Truncated input simply waits (and EOF discards
/// it); a framing violation forwards one [`Envelope::Malformed`] so the
/// rejection is counted, then drops the connection — reframing after a
/// bogus length prefix is impossible.
///
/// `registered` distinguishes the lockstep ledger's two cases. Mesh
/// streams (`true`) carry frames a peer worker registered with the
/// coordinator *before* its socket write, so forwarding must not add
/// again. Late, untrusted connections (`false`) were registered by
/// nobody — the reader adds each envelope itself right before
/// forwarding, so the worker's unconditional `done()` stays balanced
/// and hostile bytes can never consume a legitimate frame's credit and
/// release a quiescence barrier early.
///
/// `screen` is `Some` exactly on untrusted connections: the
/// per-connection rejected-frame budget (see [`TcpConfig::reject_limit`]
/// and the module docs).
///
/// `late_auth` is `Some` on untrusted connections of a session that
/// authenticates late peers: if the connection's **first** frame is a
/// `HandshakeHello`, the reader runs the listener handshake in-line
/// (same framer, so no bytes are lost) — success lets subsequent frames
/// flow through the normal screened path, refusal sends a
/// `HandshakeReject`, forwards one [`Envelope::HandshakeRejected`] (so
/// the refusal is counted) and severs. A first frame that is anything
/// else keeps the legacy screened path: hostile byte floods are handled
/// exactly as before.
fn read_loop(
    mut stream: TcpStream,
    inbox: InboxHandle,
    coord: Option<Arc<Coordination>>,
    max_frame: usize,
    registered: bool,
    mut screen: Option<RejectScreen>,
    late_auth: Option<LateAuth>,
) {
    let mut framer = StreamFramer::new(max_frame);
    let mut chunk = [0u8; 16 * 1024];
    let forward = |envelope: Envelope| -> bool {
        // The lane is derived from the envelope bytes themselves, so an
        // unregistered add here, a mesh sender's registration, and the
        // worker's eventual `done()` all land on the same lane
        // (non-frame envelopes — `Malformed`, `HandshakeRejected` —
        // always gate).
        let charge = coord
            .as_ref()
            .map(|coord| Charge::of_envelope(&envelope, coord.window()));
        if !registered {
            if let (Some(coord), Some(charge)) = (&coord, charge) {
                coord.add(charge, 1);
            }
        }
        if inbox.send(envelope) {
            return true;
        }
        // The worker is gone; balance the ledger for the envelope it
        // will never process (a peer's registration or the add above).
        if let (Some(coord), Some(charge)) = (&coord, charge) {
            coord.done(charge);
        }
        false
    };
    let mut pending_auth = late_auth;
    loop {
        let frame = match pull_frame(&mut stream, &mut framer, &mut chunk) {
            Pulled::Frame(frame) => frame,
            Pulled::Eof => return,
            Pulled::Violation => {
                // On a mesh stream this consumes the garbled frame's
                // own registration; on an untrusted one `forward`
                // adds first.
                let _ = forward(Envelope::Malformed);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        // First frame of an auth-capable connection: a hello opens the
        // listener handshake; anything else falls through to the
        // legacy screened path below.
        if let Some(auth) = pending_auth.take() {
            let hello = decode_frame(&frame, &auth.shared.config.wire)
                .ok()
                .filter(|f| matches!(f.msg.body, MessageBody::HandshakeHello { .. }));
            if let Some(hello) = hello {
                match listener_handshake(&mut stream, &mut framer, &mut chunk, &auth, &hello) {
                    Ok(_peer) => continue,
                    Err(refused) => {
                        if refused.is_some() {
                            let _ = forward(Envelope::HandshakeRejected);
                        }
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                }
            }
        }
        match screen.as_mut().map_or(Screened::Clean, |s| s.screen(&frame)) {
            Screened::Flood => {
                // Budget spent: sever the flooding connection, count
                // the cut, and stop forwarding its frames.
                let _ = forward(Envelope::ConnectionDropped);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Screened::Bad => {
                // Already proven undecodable/misrouted: count the
                // rejection without making the worker decode the bytes
                // a second time.
                if !forward(Envelope::Malformed) {
                    return;
                }
            }
            Screened::Clean => {
                if !forward(Envelope::Frame { bytes: frame }) {
                    return;
                }
            }
        }
    }
}

/// Runs `engines` for `rounds` rounds linked by real TCP streams over
/// loopback, under the configured [`Scheduler`].
///
/// Contract identical to [`crate::threaded::run_threaded`]: every
/// engine's node must belong to `shared`'s key roster, `crashes` are
/// fail-stop rounds, `churn` the scheduled membership changes, and
/// `faults` the session's compiled fault plan. Transport establishment
/// failures come back as a typed [`TcpSetupError`] instead of a panic.
pub fn run_tcp(
    shared: &Arc<SharedContext>,
    engines: Vec<PagEngine>,
    rounds: u64,
    crashes: &[(NodeId, u64)],
    churn: &[ChurnEvent],
    faults: &Arc<FaultPlan>,
    cfg: &TcpConfig,
) -> Result<TcpRun, TcpSetupError> {
    let ids: Vec<NodeId> = engines.iter().map(|e| e.id()).collect();
    let n = ids.len();
    let coord = cfg
        .lockstep
        .then(|| Arc::new(Coordination::new(n, cfg.pipeline_window)));
    let round_ms = cfg.round_ms.max(1);
    let net_seed = cfg.seed ^ 0x4E45_5445_4D55;

    // Node inboxes: per-node channels (thread-per-node) or pool slots
    // (created after the mesh, alongside the epoch they are clocked by).
    let pool_size = match cfg.scheduler {
        Scheduler::ThreadPerNode => None,
        Scheduler::Pool(size) => Some(size),
    };
    let mut senders: BTreeMap<NodeId, Sender<Envelope>> = BTreeMap::new();
    let mut receivers = Vec::new();
    if pool_size.is_none() {
        for &id in &ids {
            let (tx, rx) = channel();
            senders.insert(id, tx);
            receivers.push(rx);
        }
    }

    // One loopback listener per node.
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: BTreeMap<NodeId, SocketAddr> = BTreeMap::new();
    for &id in &ids {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(TcpSetupError::Bind)?;
        addrs.insert(
            id,
            listener.local_addr().map_err(TcpSetupError::LocalAddr)?,
        );
        listeners.push(listener);
    }

    // Session-global handshake nonce counter: uniqueness across every
    // connection of the run is what defeats proof replay.
    let hs_nonces = Arc::new(AtomicU64::new(1));

    // Full mesh of duplex streams, one per unordered node pair, paired
    // synchronously on this thread: connect i -> j, then accept on j's
    // listener. Pairing alone proves nothing about identity — every
    // stream is then **authenticated** with the challenge/response
    // handshake (`pag_core::handshake`, DESIGN.md §13): hellos carrying
    // fresh nonces cross, then each side signs the channel binding
    // (session id + both nonces) with its identity key. Each side keeps
    // a cloned write-half (for its TcpLink) and the original as
    // read-half (for its reader thread).
    let mut writes: Vec<BTreeMap<NodeId, TcpStream>> = (0..n).map(|_| BTreeMap::new()).collect();
    let mut reads: Vec<Vec<TcpStream>> = (0..n).map(|_| Vec::new()).collect();
    for j in 0..n {
        for i in 0..j {
            let mut initiated =
                TcpStream::connect(addrs[&ids[j]]).map_err(TcpSetupError::Connect)?;
            let (mut accepted, _) = listeners[j].accept().map_err(TcpSetupError::Accept)?;
            initiated.set_nodelay(true).map_err(TcpSetupError::Configure)?;
            accepted.set_nodelay(true).map_err(TcpSetupError::Configure)?;
            let dialer_nonce = fresh_nonce(cfg.seed, &hs_nonces);
            let listener_nonce = fresh_nonce(cfg.seed, &hs_nonces);
            mesh_handshake(
                &mut initiated,
                &mut accepted,
                shared,
                ids[i],
                ids[j],
                dialer_nonce,
                listener_nonce,
                cfg.max_frame_bytes,
            )?;
            writes[i].insert(
                ids[j],
                initiated.try_clone().map_err(TcpSetupError::Configure)?,
            );
            reads[i].push(initiated);
            writes[j].insert(
                ids[i],
                accepted.try_clone().map_err(TcpSetupError::Configure)?,
            );
            reads[j].push(accepted);
        }
    }

    // The mesh is closed; only now advertise addresses (probes that
    // connect in response land on the accept threads below, never in
    // the mesh pairing above).
    if let Some(probe) = &cfg.addr_probe {
        for (&id, &addr) in &addrs {
            let _ = probe.send((id, addr));
        }
    }

    let queues = pool_size.map(|size| {
        (
            size,
            PoolQueues::new(n, coord.clone(), cfg.hooks.trace.is_some()),
        )
    });
    let inbox_of = |idx: usize| -> InboxHandle {
        match &queues {
            Some((_, queues)) => InboxHandle::Pool(Arc::clone(queues), idx),
            None => InboxHandle::Channel(senders[&ids[idx]].clone()),
        }
    };

    // Per-node link health counters, shared between each node's TcpLink
    // and (for spawn failures) this setup path; the node core drains
    // them into its engine metrics every round.
    let severed: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let reconnected: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();

    // Reader threads: one per established inbound stream. Mesh peers
    // are trusted engines — no reject screen. A spawn failure is not a
    // panic: the inbound half of that link is simply dead, which we log
    // and count as a sever (the write half keeps working).
    for (idx, streams) in reads.into_iter().enumerate() {
        for stream in streams {
            let inbox = inbox_of(idx);
            let coord = coord.clone();
            let max = cfg.max_frame_bytes;
            let spawned = thread::Builder::new()
                .name(format!("pag-tcp-read-{}", ids[idx]))
                .spawn(move || read_loop(stream, inbox, coord, max, true, None, None));
            if spawned.is_err() {
                pag_obs::logger::warn(
                    "tcp.reader_spawn",
                    format_args!(
                        "node={} could not spawn a mesh reader thread, counting the \
                         inbound link as severed",
                        ids[idx]
                    ),
                );
                severed[idx].fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    // Accept threads: keep each listener open for late (untrusted)
    // connections; their bytes go through the same reject-don't-panic
    // frame path, behind the per-connection rejected-frame budget. A
    // stop flag plus a wake-up connection ends them. Spawn failures —
    // of an accept thread, or of one of its per-connection readers —
    // are logged and counted, never panics.
    let stop_accepting = Arc::new(AtomicBool::new(false));
    let mut accept_handles = Vec::with_capacity(n);
    for (idx, listener) in listeners.into_iter().enumerate() {
        let inbox = inbox_of(idx);
        let owner = ids[idx];
        let coord = coord.clone();
        let stop = Arc::clone(&stop_accepting);
        let max = cfg.max_frame_bytes;
        let limit = cfg.reject_limit;
        let wire = shared.config.wire.clone();
        let auth_shared = Arc::clone(shared);
        let auth_nonces = Arc::clone(&hs_nonces);
        let auth_seed = cfg.seed;
        let spawned = thread::Builder::new()
            .name(format!("pag-tcp-accept-{}", ids[idx]))
            .spawn(move || loop {
                let Ok((conn, _)) = listener.accept() else {
                    return;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let _ = conn.set_nodelay(true);
                let inbox = inbox.clone();
                let coord = coord.clone();
                let screen = RejectScreen {
                    owner,
                    wire: wire.clone(),
                    limit,
                    rejected: 0,
                };
                let auth = LateAuth {
                    shared: Arc::clone(&auth_shared),
                    owner,
                    nonce_counter: Arc::clone(&auth_nonces),
                    seed: auth_seed,
                    max_frame: max,
                };
                let closer = conn.try_clone().ok();
                let reader = thread::Builder::new()
                    .name(format!("pag-tcp-late-{owner}"))
                    .spawn(move || {
                        read_loop(conn, inbox, coord, max, false, Some(screen), Some(auth))
                    });
                if reader.is_err() {
                    pag_obs::logger::warn(
                        "tcp.late_reader_spawn",
                        format_args!(
                            "node={owner} could not spawn a reader for a late \
                             connection, dropping it"
                        ),
                    );
                    if let Some(closer) = closer {
                        let _ = closer.shutdown(Shutdown::Both);
                    }
                }
            });
        match spawned {
            Ok(handle) => accept_handles.push(handle),
            Err(_) => {
                pag_obs::logger::warn(
                    "tcp.accept_spawn",
                    format_args!(
                        "node={} could not spawn its accept thread, late connections \
                         to it will be refused",
                        ids[idx]
                    ),
                );
                severed[idx].fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    // The epoch starts only now — after mesh setup and thread spawning —
    // so neither connection establishment nor spawning the ~n² reader
    // threads eats into round 0's real-time budget. The pool's timer
    // wheel is clocked by the same instant as the node cores (run_pool
    // passes it to the timekeeper alongside the queues).
    let epoch = Instant::now();

    // Retires the accept threads: unblock each listener with a throwaway
    // connection, then join. Runs before worker joins on both
    // schedulers, so a panicking node cannot leak n blocked accept
    // threads and their bound listeners. Setting the stop flag also
    // retires any in-flight reconnect supervisors.
    let probe_addrs: Vec<SocketAddr> = addrs.values().copied().collect();
    let stop_flag = Arc::clone(&stop_accepting);
    let stop_accepts = move || {
        stop_flag.store(true, Ordering::SeqCst);
        for addr in &probe_addrs {
            let _ = TcpStream::connect(addr);
        }
        for handle in accept_handles {
            let _ = handle.join();
        }
    };

    // One core per node, identical initial state for both schedulers.
    let cores: Vec<NodeCore<TcpLink>> = engines
        .into_iter()
        .enumerate()
        .map(|(idx, engine)| {
            let id = ids[idx];
            let peers = std::mem::take(&mut writes[idx])
                .into_iter()
                .map(|(peer, stream)| {
                    (
                        peer,
                        PeerLink {
                            slot: Arc::new(Mutex::new(Some(stream))),
                            addr: addrs[&peer],
                        },
                    )
                })
                .collect();
            let mut kills: Vec<(u64, NodeId)> = cfg
                .link_kills
                .iter()
                .filter_map(|&(a, b, round)| {
                    if a == id {
                        Some((round, b))
                    } else if b == id {
                        Some((round, a))
                    } else {
                        None
                    }
                })
                .collect();
            kills.sort_unstable();
            let mut core = NodeCore::new(
                idx,
                id,
                engine,
                shared.config.wire.clone(),
                TcpLink {
                    owner: id,
                    peers,
                    max_frame: cfg.max_frame_bytes,
                    self_heal: !cfg.lockstep,
                    severed: Arc::clone(&severed[idx]),
                    reconnected: Arc::clone(&reconnected[idx]),
                    stop: Arc::clone(&stop_accepting),
                    jitter_seed: cfg.seed ^ 0x5E1F_4EA1 ^ (u64::from(id.0) << 32),
                    shared: Arc::clone(shared),
                    nonce_counter: Arc::clone(&hs_nonces),
                    seed: cfg.seed,
                },
                coord.clone(),
                down_windows(crashes, faults, id),
                merged_feeds(churn, faults, id),
                epoch,
                round_ms,
                cfg.net.clone(),
                net_seed,
                Arc::clone(faults),
                kills,
                cfg.hooks.clone(),
            );
            core.coalesce = cfg.lockstep && cfg.coalesce;
            core
        })
        .collect();

    match queues {
        None => {
            let mut handles = Vec::with_capacity(n);
            for (core, rx) in cores.into_iter().zip(receivers) {
                let id = core.id;
                let worker = Worker { core, rx };
                let handle = thread::Builder::new()
                    .name(format!("pag-tcp-{id}"))
                    .spawn(move || worker.run())
                    .map_err(TcpSetupError::SpawnNode)?;
                handles.push((id, handle));
            }

            drive_rounds(&senders, coord.as_ref(), epoch, rounds, round_ms);
            drop(senders);
            stop_accepts();
            Ok(join_workers(handles, rounds))
        }
        Some((size, queues)) => {
            let threads = Scheduler::resolve_threads(size, n);
            run_pool(cores, queues, threads, epoch, rounds, round_ms, stop_accepts)
                .map_err(TcpSetupError::SpawnNode)
        }
    }
}
