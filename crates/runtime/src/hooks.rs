//! Host integration hooks: snapshot persistence and live observation.
//!
//! A long-lived host process (`pag-host`) needs two things from a
//! running session that the drivers never needed before (DESIGN.md
//! §13):
//!
//! * **crash durability** — when a node enters a crash window, its
//!   [`NodeSnapshot`] must reach disk so a restarted process can rejoin
//!   via [`pag_core::engine::Input::Recover`] instead of being
//!   convicted. The [`SnapshotVault`] trait is that sink; the on-disk
//!   implementation lives in `pag-host` (atomic temp-file + rename).
//! * **live visibility** — a client polling the host wants per-node
//!   round progress, [`NodeMetrics`] and [`NodeTraffic`] *while the
//!   session runs*, not only in the final outcome. [`SessionWatch`] is
//!   that snapshot stream: every node publishes its status at each
//!   round entry, and [`SessionWatch::snapshot`] returns a consistent
//!   copy on demand.
//!
//! Both hooks are strictly **below** the protocol: they never alter an
//! engine input, never touch traffic accounting, and a session run with
//! hooks produces bit-identical verdicts, deliveries, traffic and
//! crypto ops to one run without (the host equivalence suite pins
//! this). A vault that fails to save or load degrades to the in-memory
//! recovery path with a log line, never a panic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pag_core::{NodeMetrics, NodeSnapshot};
use pag_membership::NodeId;
use pag_obs::{LatencySummary, SessionRecorder, TraceEvent};

use crate::report::NodeTraffic;

/// Where node snapshots go when a node crashes, and where they come
/// back from when it recovers. Implementations must be infallible at
/// this boundary — report persistence problems by returning
/// `false`/`None` (after logging), so a full disk can never panic a
/// node worker or change protocol behaviour.
pub trait SnapshotVault: Send + Sync {
    /// Persists `snap` for its node. `false` means the snapshot did not
    /// reach stable storage (already logged by the implementation).
    fn save(&self, snap: &NodeSnapshot) -> bool;

    /// Loads the last persisted snapshot of `node`, if one exists and
    /// is intact. Corrupt or truncated state must come back as `None`
    /// (after logging), never a panic — the bytes are a disk's word,
    /// not a peer engine's.
    fn load(&self, node: NodeId) -> Option<NodeSnapshot>;
}

/// One node's live status, as last published at a round entry.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The round the node most recently entered.
    pub round: u64,
    /// Protocol metrics accumulated so far.
    pub metrics: NodeMetrics,
    /// Traffic accounted so far.
    pub traffic: NodeTraffic,
    /// Flight-recorder histogram summaries (round wall, barrier stall,
    /// sign/verify/hash latency) as of the publication; `None` when the
    /// session runs untraced (DESIGN.md §14).
    pub lat: Option<LatencySummary>,
    /// The node's trailing trace events (oldest first, bounded by
    /// `TraceConfig::recent_events`); empty when untraced.
    pub recent: Vec<TraceEvent>,
}

impl NodeStatus {
    /// A status with only the protocol-visible fields set (no trace
    /// attachments) — what untraced sessions publish.
    pub fn untraced(round: u64, metrics: NodeMetrics, traffic: NodeTraffic) -> Self {
        NodeStatus {
            round,
            metrics,
            traffic,
            lat: None,
            recent: Vec::new(),
        }
    }
}

/// A live, pollable view of one running session: per-node status
/// published at every round entry. Cheap to clone an `Arc` of; the host
/// hands these out so clients can watch progress without joining the
/// session thread.
#[derive(Default)]
pub struct SessionWatch {
    nodes: Mutex<BTreeMap<NodeId, NodeStatus>>,
}

impl std::fmt::Debug for SessionWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = self.nodes.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("SessionWatch")
            .field("nodes", &nodes.len())
            .finish()
    }
}

impl SessionWatch {
    /// An empty watch, ready to be wired into a driver config.
    pub fn new() -> Arc<Self> {
        Arc::new(SessionWatch::default())
    }

    /// Publishes `node`'s status (called by the node core at round
    /// entry; a poisoned lock is ridden out — observation must never
    /// take a worker down).
    pub(crate) fn publish(&self, node: NodeId, status: NodeStatus) {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(node, status);
    }

    /// A consistent copy of every node's last published status.
    pub fn snapshot(&self) -> BTreeMap<NodeId, NodeStatus> {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The lowest round any node has entered so far (`None` before the
    /// first publication) — a session-level progress indicator.
    pub fn min_round(&self) -> Option<u64> {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .map(|s| s.round)
            .min()
    }
}

/// The host's hooks into a driver run, bundled so driver configs grow
/// one field instead of three. All default to off; a plain
/// `ThreadedConfig::default()` / `TcpConfig::default()` run is exactly
/// the pre-host driver.
#[derive(Clone, Default)]
pub struct HostHooks {
    /// Snapshot persistence for crash-recovery durability.
    pub vault: Option<Arc<dyn SnapshotVault>>,
    /// Live per-node status publication.
    pub watch: Option<Arc<SessionWatch>>,
    /// The session's flight recorder; node cores derive their per-node
    /// recorders from it at construction. Like the other hooks it is
    /// strictly below the protocol: it observes timings and events but
    /// never feeds anything back, so a traced run stays bit-identical
    /// to an untraced one (DESIGN.md §14).
    pub trace: Option<Arc<SessionRecorder>>,
}

impl std::fmt::Debug for HostHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostHooks")
            .field("vault", &self.vault.is_some())
            .field("watch", &self.watch.is_some())
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_publishes_and_snapshots() {
        let watch = SessionWatch::new();
        assert!(watch.snapshot().is_empty());
        assert_eq!(watch.min_round(), None);
        watch.publish(
            NodeId(3),
            NodeStatus::untraced(5, NodeMetrics::default(), NodeTraffic::default()),
        );
        watch.publish(
            NodeId(1),
            NodeStatus::untraced(4, NodeMetrics::default(), NodeTraffic::default()),
        );
        let snap = watch.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&NodeId(3)].round, 5);
        assert!(snap[&NodeId(3)].lat.is_none() && snap[&NodeId(3)].recent.is_empty());
        assert_eq!(watch.min_round(), Some(4));
    }

    #[test]
    fn hooks_default_off() {
        let hooks = HostHooks::default();
        assert!(hooks.vault.is_none() && hooks.watch.is_none() && hooks.trace.is_none());
        let debugged = format!("{hooks:?}");
        assert!(debugged.contains("vault: false"), "{debugged}");
        assert!(debugged.contains("trace: false"), "{debugged}");
    }

    /// Satellite stress test: concurrent publishers and pollers must
    /// never observe a torn [`NodeStatus`] (fields from two different
    /// publications) and per-node rounds — hence `min_round` — must be
    /// monotone while each publisher counts up.
    #[test]
    fn watch_concurrent_publish_poll_stress() {
        use std::sync::atomic::{AtomicBool, Ordering};

        const PUBLISHERS: u32 = 4;
        const ROUNDS: u64 = 400;

        let watch = SessionWatch::new();
        let stop = Arc::new(AtomicBool::new(false));

        let publishers: Vec<_> = (0..PUBLISHERS)
            .map(|node| {
                let watch = Arc::clone(&watch);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        // Tear detector: every field of a publication
                        // encodes the same round, so a mixed-up status
                        // is observable.
                        let mut metrics = NodeMetrics {
                            exchanges_completed: round,
                            ..NodeMetrics::default()
                        };
                        metrics.ops.signatures = round;
                        let traffic = NodeTraffic {
                            sent_msgs: round,
                            ..NodeTraffic::default()
                        };
                        let mut status =
                            NodeStatus::untraced(round, metrics, traffic);
                        status.lat = Some({
                            let mut l = LatencySummary::default();
                            l.round_wall.count = round;
                            l
                        });
                        watch.publish(NodeId(node), status);
                    }
                })
            })
            .collect();

        let poller = {
            let watch = Arc::clone(&watch);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_round: BTreeMap<NodeId, u64> = BTreeMap::new();
                let mut last_min = 0;
                while !stop.load(Ordering::Relaxed) {
                    for (node, status) in watch.snapshot() {
                        assert_eq!(status.metrics.exchanges_completed, status.round);
                        assert_eq!(status.metrics.ops.signatures, status.round);
                        assert_eq!(status.traffic.sent_msgs, status.round);
                        let lat = status.lat.expect("publisher always sets lat");
                        assert_eq!(lat.round_wall.count, status.round);
                        let prev = last_round.entry(node).or_insert(0);
                        assert!(status.round >= *prev, "round went backwards");
                        *prev = status.round;
                    }
                    if let Some(min) = watch.min_round() {
                        assert!(min >= last_min, "min_round went backwards");
                        last_min = min;
                    }
                }
            })
        };

        for p in publishers {
            p.join().expect("publisher thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
        poller.join().expect("poller thread panicked");

        assert_eq!(watch.min_round(), Some(ROUNDS - 1));
        assert_eq!(watch.snapshot().len(), PUBLISHERS as usize);
    }
}
