//! Host integration hooks: snapshot persistence and live observation.
//!
//! A long-lived host process (`pag-host`) needs two things from a
//! running session that the drivers never needed before (DESIGN.md
//! §13):
//!
//! * **crash durability** — when a node enters a crash window, its
//!   [`NodeSnapshot`] must reach disk so a restarted process can rejoin
//!   via [`pag_core::engine::Input::Recover`] instead of being
//!   convicted. The [`SnapshotVault`] trait is that sink; the on-disk
//!   implementation lives in `pag-host` (atomic temp-file + rename).
//! * **live visibility** — a client polling the host wants per-node
//!   round progress, [`NodeMetrics`] and [`NodeTraffic`] *while the
//!   session runs*, not only in the final outcome. [`SessionWatch`] is
//!   that snapshot stream: every node publishes its status at each
//!   round entry, and [`SessionWatch::snapshot`] returns a consistent
//!   copy on demand.
//!
//! Both hooks are strictly **below** the protocol: they never alter an
//! engine input, never touch traffic accounting, and a session run with
//! hooks produces bit-identical verdicts, deliveries, traffic and
//! crypto ops to one run without (the host equivalence suite pins
//! this). A vault that fails to save or load degrades to the in-memory
//! recovery path with a log line, never a panic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pag_core::{NodeMetrics, NodeSnapshot};
use pag_membership::NodeId;

use crate::report::NodeTraffic;

/// Where node snapshots go when a node crashes, and where they come
/// back from when it recovers. Implementations must be infallible at
/// this boundary — report persistence problems by returning
/// `false`/`None` (after logging), so a full disk can never panic a
/// node worker or change protocol behaviour.
pub trait SnapshotVault: Send + Sync {
    /// Persists `snap` for its node. `false` means the snapshot did not
    /// reach stable storage (already logged by the implementation).
    fn save(&self, snap: &NodeSnapshot) -> bool;

    /// Loads the last persisted snapshot of `node`, if one exists and
    /// is intact. Corrupt or truncated state must come back as `None`
    /// (after logging), never a panic — the bytes are a disk's word,
    /// not a peer engine's.
    fn load(&self, node: NodeId) -> Option<NodeSnapshot>;
}

/// One node's live status, as last published at a round entry.
#[derive(Clone, Debug)]
pub struct NodeStatus {
    /// The round the node most recently entered.
    pub round: u64,
    /// Protocol metrics accumulated so far.
    pub metrics: NodeMetrics,
    /// Traffic accounted so far.
    pub traffic: NodeTraffic,
}

/// A live, pollable view of one running session: per-node status
/// published at every round entry. Cheap to clone an `Arc` of; the host
/// hands these out so clients can watch progress without joining the
/// session thread.
#[derive(Default)]
pub struct SessionWatch {
    nodes: Mutex<BTreeMap<NodeId, NodeStatus>>,
}

impl std::fmt::Debug for SessionWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = self.nodes.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("SessionWatch")
            .field("nodes", &nodes.len())
            .finish()
    }
}

impl SessionWatch {
    /// An empty watch, ready to be wired into a driver config.
    pub fn new() -> Arc<Self> {
        Arc::new(SessionWatch::default())
    }

    /// Publishes `node`'s status (called by the node core at round
    /// entry; a poisoned lock is ridden out — observation must never
    /// take a worker down).
    pub(crate) fn publish(&self, node: NodeId, status: NodeStatus) {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(node, status);
    }

    /// A consistent copy of every node's last published status.
    pub fn snapshot(&self) -> BTreeMap<NodeId, NodeStatus> {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The lowest round any node has entered so far (`None` before the
    /// first publication) — a session-level progress indicator.
    pub fn min_round(&self) -> Option<u64> {
        self.nodes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .map(|s| s.round)
            .min()
    }
}

/// The host's hooks into a driver run, bundled so driver configs grow
/// one field instead of two. Both default to off; a plain
/// `ThreadedConfig::default()` / `TcpConfig::default()` run is exactly
/// the pre-host driver.
#[derive(Clone, Default)]
pub struct HostHooks {
    /// Snapshot persistence for crash-recovery durability.
    pub vault: Option<Arc<dyn SnapshotVault>>,
    /// Live per-node status publication.
    pub watch: Option<Arc<SessionWatch>>,
}

impl std::fmt::Debug for HostHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostHooks")
            .field("vault", &self.vault.is_some())
            .field("watch", &self.watch.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_publishes_and_snapshots() {
        let watch = SessionWatch::new();
        assert!(watch.snapshot().is_empty());
        assert_eq!(watch.min_round(), None);
        watch.publish(
            NodeId(3),
            NodeStatus {
                round: 5,
                metrics: NodeMetrics::default(),
                traffic: NodeTraffic::default(),
            },
        );
        watch.publish(
            NodeId(1),
            NodeStatus {
                round: 4,
                metrics: NodeMetrics::default(),
                traffic: NodeTraffic::default(),
            },
        );
        let snap = watch.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&NodeId(3)].round, 5);
        assert_eq!(watch.min_round(), Some(4));
    }

    #[test]
    fn hooks_default_off() {
        let hooks = HostHooks::default();
        assert!(hooks.vault.is_none() && hooks.watch.is_none());
        let debugged = format!("{hooks:?}");
        assert!(debugged.contains("vault: false"), "{debugged}");
    }
}
