//! The threaded driver: a real-time multi-threaded in-process runtime
//! for the sans-IO engine, on **channel** links.
//!
//! Links are unbounded channels carrying **encoded frames**
//! (`pag_core::wire::encode_frame`), so every byte a node is charged
//! for actually crosses a thread boundary and is parsed back with
//! `decode_frame` on arrival — the codec is load-bearing, not
//! decorative.
//!
//! The per-node logic — engine feed, traffic accounting, timers,
//! [`NetEmulation`] faults, churn announcements, lockstep barriers — is
//! the transport-generic [`crate::worker`] module; this file only
//! supplies the [`Link`] implementation (an `mpsc::Sender` per peer)
//! and the session assembly. The TCP driver (`crate::tcp`) plugs real
//! sockets into the same node core, which is why the driver-equivalence
//! suite can hold all transports to identical outcomes.
//!
//! Two execution **schedulers** ([`Scheduler`]):
//!
//! * `ThreadPerNode` — one OS thread per node, the PR 2 model;
//! * `Pool(n)` — a fixed pool of `n` threads multiplexing every node
//!   (`crate::pool`), the scheduler that makes 1000+ node sessions
//!   practical. Pooled channel links skip the mpsc hop and deliver
//!   frames straight into the peer's pool inbox. Lockstep outcomes are
//!   identical across schedulers and pool sizes, by test.
//!
//! Two clock modes:
//!
//! * **Lockstep** (`lockstep: true`, the deterministic timer mode): time
//!   is virtual (one round = 1000 protocol ms). A coordinator drives
//!   barriers — round start, then one phase per distinct timer deadline
//!   — and waits for global quiescence (an outstanding-work counter)
//!   between phases, so every message cascade settles before the next
//!   timer fires. Within a phase, delivery *interleaving* across threads
//!   is scheduler-dependent, but the engine's handlers are commutative
//!   within a phase (monitor accumulators are products, obligations are
//!   sets), so verdict sets, delivery metrics and traffic totals are
//!   deterministic — the driver-equivalence test pins them to the
//!   simulator's.
//! * **Real time** (`lockstep: false`): rounds tick on the wall clock
//!   every `round_ms` milliseconds and engine timers are armed at
//!   proportionally scaled offsets (`after_ms * round_ms / 1000`),
//!   fired by `recv_timeout` deadlines (thread-per-node) or the shared
//!   timer wheel (pool).
//!
//! The driver supports fail-stop crashes (a crashed node drops every
//! envelope from its crash round on, like the simulator; the pool
//! additionally retires it from the run queue), membership churn
//! (scheduled joins/leaves fed to the subject engine one round early;
//! see `crate::churn`), and latency/loss injection on the links
//! ([`NetEmulation`]): loss applies in both clock modes, decided after
//! send-side accounting from a content-keyed hash of the frame bytes
//! (so lossy lockstep runs stay deterministic whatever the scheduler
//! interleaving); latency applies in real-time mode only, as a
//! receive-side delay queue keyed by the same hash.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use pag_core::engine::PagEngine;
use pag_core::SharedContext;
use pag_membership::NodeId;

use crate::churn::ChurnEvent;
use crate::faults::FaultPlan;
use crate::hooks::HostHooks;
use crate::pool::{run_pool, PoolLink, PoolQueues, Scheduler};
use crate::worker::{
    down_windows, drive_rounds, join_workers, merged_feeds, Coordination, DriverRun, Envelope,
    Link, NodeCore, Worker,
};

pub use crate::worker::{NetEmulation, NetEmulationError};

/// Outcome of a threaded run (alias of the transport-neutral
/// [`DriverRun`]; the TCP driver returns the same shape).
pub type ThreadedRun = DriverRun;

/// Setup failure of the threaded driver — thread spawning refused by
/// the OS before the session could start. Surfaced as a typed error
/// (not a panic) so a host running many sessions can report one
/// session's failure without dying.
#[derive(Debug)]
pub enum ThreadedSetupError {
    /// Spawning a dedicated node thread failed (`ThreadPerNode`).
    SpawnNode(std::io::Error),
    /// Spawning the worker pool failed (`Pool(_)`): no worker thread
    /// could be started, or the timekeeper could not.
    SpawnPool(std::io::Error),
}

impl std::fmt::Display for ThreadedSetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedSetupError::SpawnNode(e) => write!(f, "spawning a node thread failed: {e}"),
            ThreadedSetupError::SpawnPool(e) => write!(f, "spawning the worker pool failed: {e}"),
        }
    }
}

impl std::error::Error for ThreadedSetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThreadedSetupError::SpawnNode(e) | ThreadedSetupError::SpawnPool(e) => Some(e),
        }
    }
}

/// Configuration of the threaded driver.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// Wall-clock round duration in real-time mode (engine timer offsets
    /// scale by `round_ms / 1000`). Ignored in lockstep mode.
    pub round_ms: u64,
    /// Deterministic timer mode: virtual time with quiescence barriers
    /// instead of the wall clock.
    pub lockstep: bool,
    /// Session seed for the engines' deterministic randomness.
    pub seed: u64,
    /// Optional latency/loss injection on the links.
    pub net: Option<NetEmulation>,
    /// Node-to-thread mapping: dedicated threads or a worker pool.
    pub scheduler: Scheduler,
    /// Host integration hooks (snapshot vault, live status watch).
    /// Defaults to off; hooks never alter engine inputs.
    pub hooks: HostHooks,
    /// Lockstep round-pipelining window: how many rounds of exchanges
    /// may run ahead while earlier rounds' monitoring traffic drains.
    /// `0` (the default) is the classic fully-synchronous schedule;
    /// verdicts are window-independent by test. Ignored in real-time
    /// mode.
    pub pipeline_window: u64,
    /// Coalesce same-destination frames of a lockstep phase into one
    /// container frame (membership frames always travel alone). Off by
    /// default; affects wire framing only, never outcomes.
    pub coalesce: bool,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            round_ms: 1000,
            lockstep: true,
            seed: 0,
            net: None,
            scheduler: Scheduler::ThreadPerNode,
            hooks: HostHooks::default(),
            pipeline_window: 0,
            coalesce: false,
        }
    }
}

/// The channel transport: one unbounded `mpsc::Sender` per peer, the
/// same queue the coordinator uses for clock envelopes.
struct ChannelLink {
    peers: BTreeMap<NodeId, Sender<Envelope>>,
}

impl Link for ChannelLink {
    fn send_frame(&mut self, to: NodeId, frame: Vec<u8>) -> bool {
        match self.peers.get(&to) {
            Some(tx) => tx.send(Envelope::Frame { bytes: frame }).is_ok(),
            None => false,
        }
    }
}

/// Runs `engines` for `rounds` rounds on the channel transport, under
/// the configured [`Scheduler`].
///
/// Every engine's node must belong to `shared`'s key roster (initial
/// members plus scheduled joiners); `crashes` are fail-stop rounds per
/// node, `churn` the scheduled membership changes (each fed to its
/// subject's engine one round before it takes effect), and `faults` the
/// session's compiled fault plan (link cuts, partitions, corruption
/// windows, crash-restarts; pass a default plan for a clean run).
/// Returns the traffic report (protocol seconds; see [`crate::report`])
/// and the final engines, or a typed [`ThreadedSetupError`] when the OS
/// refuses the threads the session needs.
pub fn run_threaded(
    shared: &Arc<SharedContext>,
    engines: Vec<PagEngine>,
    rounds: u64,
    crashes: &[(NodeId, u64)],
    churn: &[ChurnEvent],
    faults: &Arc<FaultPlan>,
    cfg: &ThreadedConfig,
) -> Result<ThreadedRun, ThreadedSetupError> {
    let ids: Vec<NodeId> = engines.iter().map(|e| e.id()).collect();
    let n = ids.len();
    let coord = cfg
        .lockstep
        .then(|| Arc::new(Coordination::new(n, cfg.pipeline_window)));
    let epoch = Instant::now();
    let round_ms = cfg.round_ms.max(1);
    let net_seed = cfg.seed ^ 0x4E45_5445_4D55;

    match cfg.scheduler {
        Scheduler::ThreadPerNode => {
            let mut senders: BTreeMap<NodeId, Sender<Envelope>> = BTreeMap::new();
            let mut receivers = Vec::with_capacity(n);
            for &id in &ids {
                let (tx, rx) = channel();
                senders.insert(id, tx);
                receivers.push(rx);
            }

            let mut handles = Vec::with_capacity(n);
            for (idx, (engine, rx)) in engines.into_iter().zip(receivers).enumerate() {
                let id = ids[idx];
                let mut core = NodeCore::new(
                    idx,
                    id,
                    engine,
                    shared.config.wire.clone(),
                    ChannelLink {
                        peers: senders.clone(),
                    },
                    coord.clone(),
                    down_windows(crashes, faults, id),
                    merged_feeds(churn, faults, id),
                    epoch,
                    round_ms,
                    cfg.net.clone(),
                    net_seed,
                    Arc::clone(faults),
                    Vec::new(),
                    cfg.hooks.clone(),
                );
                core.coalesce = cfg.lockstep && cfg.coalesce;
                let worker = Worker { core, rx };
                match thread::Builder::new()
                    .name(format!("pag-{id}"))
                    .spawn(move || worker.run())
                {
                    Ok(handle) => handles.push((id, handle)),
                    Err(e) => {
                        // Unwind cleanly: close every channel so the
                        // already-spawned workers drain and exit, then
                        // join them before reporting the refusal.
                        drop(senders);
                        for (_, handle) in handles {
                            let _ = handle.join();
                        }
                        return Err(ThreadedSetupError::SpawnNode(e));
                    }
                }
            }

            drive_rounds(&senders, coord.as_ref(), epoch, rounds, round_ms);
            drop(senders);
            Ok(join_workers(handles, rounds))
        }
        Scheduler::Pool(size) => {
            let queues = PoolQueues::new(n, coord.clone(), cfg.hooks.trace.is_some());
            let index: Arc<BTreeMap<NodeId, usize>> =
                Arc::new(ids.iter().enumerate().map(|(i, &id)| (id, i)).collect());
            let cores: Vec<NodeCore<PoolLink>> = engines
                .into_iter()
                .enumerate()
                .map(|(idx, engine)| {
                    let id = ids[idx];
                    let mut core = NodeCore::new(
                        idx,
                        id,
                        engine,
                        shared.config.wire.clone(),
                        PoolLink::new(Arc::clone(&queues), Arc::clone(&index)),
                        coord.clone(),
                        down_windows(crashes, faults, id),
                        merged_feeds(churn, faults, id),
                        epoch,
                        round_ms,
                        cfg.net.clone(),
                        net_seed,
                        Arc::clone(faults),
                        Vec::new(),
                        cfg.hooks.clone(),
                    );
                    core.coalesce = cfg.lockstep && cfg.coalesce;
                    core
                })
                .collect();
            let threads = Scheduler::resolve_threads(size, n);
            run_pool(cores, queues, threads, epoch, rounds, round_ms, || {})
                .map_err(ThreadedSetupError::SpawnPool)
        }
    }
}
