//! The threaded driver: a real-time multi-threaded in-process runtime
//! for the sans-IO engine.
//!
//! One OS thread per node; links are unbounded channels carrying
//! **encoded frames** (`pag_core::wire::encode_frame`), so every byte a
//! node is charged for actually crosses a thread boundary and is parsed
//! back with `decode_frame` on arrival — the codec is load-bearing, not
//! decorative.
//!
//! Two clock modes:
//!
//! * **Lockstep** (`lockstep: true`, the deterministic timer mode): time
//!   is virtual (one round = 1000 protocol ms). A coordinator drives
//!   barriers — round start, then one phase per distinct timer deadline
//!   — and waits for global quiescence (an outstanding-work counter)
//!   between phases, so every message cascade settles before the next
//!   timer fires. Within a phase, delivery *interleaving* across threads
//!   is scheduler-dependent, but the engine's handlers are commutative
//!   within a phase (monitor accumulators are products, obligations are
//!   sets), so verdict sets, delivery metrics and traffic totals are
//!   deterministic — the driver-equivalence test pins them to the
//!   simulator's.
//! * **Real time** (`lockstep: false`): rounds tick on the wall clock
//!   every `round_ms` milliseconds and engine timers are armed at
//!   proportionally scaled offsets (`after_ms * round_ms / 1000`),
//!   fired by `recv_timeout` deadlines on each node thread.
//!
//! The driver supports fail-stop crashes (a crashed node drops every
//! envelope from its crash round on, like the simulator), membership
//! churn (scheduled joins/leaves fed to the subject engine one round
//! early; see `crate::churn`), and — since the [`NetEmulation`] knob —
//! latency and loss injection on the channel links, reusing the
//! simulator's fault parameters:
//!
//! * **loss** applies in both clock modes, decided after send-side
//!   accounting (like simnet: bytes are charged, the frame silently
//!   vanishes). The decision is a pure function of the seed and the
//!   frame bytes — not a draw sequence — because within a lockstep
//!   phase the *order* of a node's sends depends on scheduler
//!   interleaving; content-keyed loss drops the same frames whatever
//!   the order, keeping lossy lockstep runs deterministic;
//! * **latency** applies in real-time mode only — a received frame is
//!   held in a delay queue until its deadline. Lockstep mode ignores it:
//!   its quiescence barriers already guarantee same-phase delivery, and
//!   reordering within a phase is unobservable by design.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use pag_core::engine::{Effect, Input, PagEngine};
use pag_core::messages::CLASS_MEMBERSHIP;
use pag_core::wire::{decode_frame, encode_frame, TrafficClass};
use pag_core::{SharedContext, WireConfig};
use pag_membership::NodeId;
use pag_simnet::SimConfig;

use crate::churn::ChurnEvent;
use crate::report::{NodeTraffic, TrafficReport};

/// Virtual milliseconds per round in lockstep mode — the one-second
/// rounds the protocol's timer offsets assume (§VII-A).
const VIRTUAL_ROUND_MS: u64 = 1000;

/// Network-fault injection on the channel links, mirroring the
/// simulator's `SimConfig` fields (latency range in protocol
/// milliseconds, loss probability per frame).
#[derive(Clone, Debug)]
pub struct NetEmulation {
    /// Minimum one-way latency in protocol milliseconds (scaled by
    /// `round_ms / 1000` like engine timers). Real-time mode only.
    pub latency_min_ms: u64,
    /// Maximum one-way latency in protocol milliseconds (uniform in
    /// `[min, max]`). Real-time mode only.
    pub latency_max_ms: u64,
    /// Probability that a frame is silently lost after send-side
    /// accounting. Applies in both clock modes. Membership
    /// announcements (`CLASS_MEMBERSHIP`) are exempt: the paper
    /// assumes a reliable membership substrate, and a lost announce
    /// would permanently split views (DESIGN.md §9).
    pub loss_probability: f64,
}

impl NetEmulation {
    /// Copies the fault fields of a simulator configuration, so one
    /// scenario description drives both substrates.
    pub fn from_sim(sim: &SimConfig) -> Self {
        NetEmulation {
            latency_min_ms: (sim.latency_min.as_micros() / 1000) as u64,
            latency_max_ms: (sim.latency_max.as_micros() / 1000) as u64,
            loss_probability: sim.loss_probability,
        }
    }
}

/// FNV-1a over the frame bytes folded with the session seed: the
/// order-independent randomness behind per-frame loss and latency
/// decisions (frames already carry sender, receiver, type and round in
/// their header, so distinct frames mix differently).
fn frame_mix(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    pag_membership::mix(h)
}

/// Maps a 64-bit mix to a uniform float in `[0, 1)`.
fn mix_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration of the threaded driver.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// Wall-clock round duration in real-time mode (engine timer offsets
    /// scale by `round_ms / 1000`). Ignored in lockstep mode.
    pub round_ms: u64,
    /// Deterministic timer mode: virtual time with quiescence barriers
    /// instead of the wall clock.
    pub lockstep: bool,
    /// Session seed for the engines' deterministic randomness.
    pub seed: u64,
    /// Optional latency/loss injection on the links.
    pub net: Option<NetEmulation>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            round_ms: 1000,
            lockstep: true,
            seed: 0,
            net: None,
        }
    }
}

/// What node threads exchange: protocol frames and clock commands.
enum Envelope {
    /// The gossip clock entered this round.
    Round(u64),
    /// An encoded protocol frame. `due_ms` is the emulated-latency
    /// delivery deadline (scaled ms since the epoch; 0 = immediate —
    /// always 0 in lockstep mode).
    Frame {
        /// Encoded bytes.
        bytes: Vec<u8>,
        /// Delivery deadline under latency emulation.
        due_ms: u64,
    },
    /// Lockstep only: release the frames stashed during the last
    /// round-start or timer phase.
    ///
    /// Phase outputs are buffered until every node has processed its own
    /// phase envelope — otherwise a fast node's `KeyRequest` could reach
    /// a peer that has not minted its round primes yet, or an eval-phase
    /// `Nack` could overtake a peer monitor's own evaluation. The
    /// simulator cannot interleave these either: events at one instant
    /// all precede any same-instant send's delivery (latency > 0).
    Flush,
    /// Lockstep only: fire every timer due at or before this virtual ms.
    TimersUpTo(u64),
    /// Shut down and report.
    Stop,
}

/// Quiescence tracking for lockstep mode: a count of outstanding
/// envelopes plus each node's next timer deadline.
struct Coordination {
    pending: Mutex<u64>,
    quiet: Condvar,
    deadlines: Mutex<Vec<Option<u64>>>,
    /// Set when a worker panics, so `wait_quiet` unblocks instead of
    /// waiting forever on work the dead thread can no longer drain; the
    /// coordinator then joins and propagates the original panic.
    aborted: std::sync::atomic::AtomicBool,
}

impl Coordination {
    fn new(nodes: usize) -> Self {
        Coordination {
            pending: Mutex::new(0),
            quiet: Condvar::new(),
            deadlines: Mutex::new(vec![None; nodes]),
            aborted: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn abort(&self) {
        self.aborted
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let _unused = self.pending.lock().expect("pending lock");
        self.quiet.notify_all();
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Registers `n` envelopes about to be enqueued. Always called
    /// *before* the matching `send`, so the counter can never observe
    /// zero while work is in flight.
    fn add(&self, n: u64) {
        *self.pending.lock().expect("pending lock") += n;
    }

    /// Marks one envelope fully processed (all its own sends already
    /// registered).
    fn done(&self) {
        let mut p = self.pending.lock().expect("pending lock");
        *p -= 1;
        if *p == 0 {
            self.quiet.notify_all();
        }
    }

    /// Blocks until every envelope (and the cascades it spawned) is
    /// processed, or until a worker aborted.
    fn wait_quiet(&self) {
        let mut p = self.pending.lock().expect("pending lock");
        while *p != 0 && !self.is_aborted() {
            p = self.quiet.wait(p).expect("pending wait");
        }
    }

    fn publish_deadline(&self, idx: usize, deadline: Option<u64>) {
        self.deadlines.lock().expect("deadline lock")[idx] = deadline;
    }

    fn min_deadline(&self) -> Option<u64> {
        self.deadlines
            .lock()
            .expect("deadline lock")
            .iter()
            .flatten()
            .copied()
            .min()
    }
}

/// Final state a node thread reports.
struct WorkerResult {
    id: NodeId,
    engine: PagEngine,
    traffic: NodeTraffic,
}

/// Outcome of a threaded run: per-node traffic plus the final engines
/// (verdicts, metrics, stores).
pub struct ThreadedRun {
    /// Traffic accounted from real encoded frames.
    pub report: TrafficReport,
    /// Final engine states by node.
    pub engines: BTreeMap<NodeId, PagEngine>,
}

struct Worker {
    idx: usize,
    id: NodeId,
    engine: PagEngine,
    wire: WireConfig,
    rx: Receiver<Envelope>,
    peers: BTreeMap<NodeId, Sender<Envelope>>,
    coord: Option<Arc<Coordination>>,
    traffic: NodeTraffic,
    /// Pending timers: (due, sequence, tag). `due` is virtual ms in
    /// lockstep mode, scaled ms since `epoch` in real-time mode.
    timers: Vec<(u64, u64, u64)>,
    timer_seq: u64,
    now_ms: u64,
    crash_round: Option<u64>,
    crashed: bool,
    effects: Vec<Effect>,
    /// Lockstep: frames produced during round start, held for `Flush`.
    stash: Vec<(NodeId, Vec<u8>, TrafficClass)>,
    buffering: bool,
    /// Real-time mode: wall-clock epoch and per-round milliseconds.
    epoch: Instant,
    round_ms: u64,
    /// Churn inputs this node must announce, keyed by announce round
    /// (= effective round - 1).
    churn: Vec<(u64, Input)>,
    /// Link-fault injection (see [`NetEmulation`]).
    net: Option<NetEmulation>,
    /// Seed for the content-keyed loss/latency decisions.
    net_seed: u64,
    /// Real-time mode: frames held back by latency emulation, as
    /// (due, arrival order, bytes).
    delayed: Vec<(u64, u64, Vec<u8>)>,
    delay_seq: u64,
}

impl Worker {
    fn lockstep(&self) -> bool {
        self.coord.is_some()
    }

    /// Scales a protocol-ms delay to this driver's clock.
    fn scale(&self, after_ms: u64) -> u64 {
        if self.lockstep() {
            after_ms
        } else {
            after_ms * self.round_ms / VIRTUAL_ROUND_MS
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        self.timers.iter().map(|&(due, _, _)| due).min()
    }

    /// Earliest wake-up in real-time mode: a timer or a delayed frame.
    fn next_wake(&self) -> Option<u64> {
        let frames = self.delayed.iter().map(|&(due, _, _)| due).min();
        match (self.next_deadline(), frames) {
            (Some(t), Some(f)) => Some(t.min(f)),
            (t, f) => t.or(f),
        }
    }

    /// Delivers every delayed frame due at or before `upto`, in (due,
    /// arrival) order. Crashed nodes drop them, like live envelopes.
    fn release_delayed(&mut self, upto: u64) {
        while let Some(pos) = self
            .delayed
            .iter()
            .enumerate()
            .filter(|(_, &(due, _, _))| due <= upto)
            .min_by_key(|(_, &(due, seq, _))| (due, seq))
            .map(|(i, _)| i)
        {
            let (_, _, bytes) = self.delayed.swap_remove(pos);
            if !self.crashed {
                self.deliver(bytes);
            }
        }
    }

    /// Runs one engine input and executes the effects: encode + ship
    /// frames, arm timers.
    fn feed(&mut self, input: Input) {
        let mut fx = std::mem::take(&mut self.effects);
        fx.clear();
        self.engine.handle_into(input, &mut fx);
        for effect in fx.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    bytes,
                    class,
                } => {
                    let frame = encode_frame(self.id, to, &msg, &self.wire)
                        .expect("session messages encode under the session wire profile");
                    debug_assert_eq!(frame.len(), bytes, "codec/accounting divergence");
                    self.traffic.record_send(frame.len(), class);
                    if self.buffering {
                        self.stash.push((to, frame, class));
                    } else {
                        self.ship(to, frame, class);
                    }
                }
                Effect::SetTimer { tag, after_ms } => {
                    let due = self.now_ms + self.scale(after_ms);
                    self.timers.push((due, self.timer_seq, tag));
                    self.timer_seq += 1;
                }
                // Retained inside the engine; harvested after the run.
                Effect::Verdict(_) | Effect::Metric(_) => {}
            }
        }
        self.effects = fx;
    }

    /// Enqueues one frame on a peer's link, applying loss and latency
    /// emulation. Sends are already accounted by the caller, so a lost
    /// frame is charged like a frame a dead TCP peer never reads.
    fn ship(&mut self, to: NodeId, frame: Vec<u8>, class: TrafficClass) {
        let mut due_ms = 0;
        if let Some(net) = &self.net {
            let h = frame_mix(self.net_seed, &frame);
            if net.loss_probability > 0.0
                && class != CLASS_MEMBERSHIP
                && mix_unit(h) < net.loss_probability
            {
                return;
            }
            if !self.lockstep() && net.latency_max_ms > 0 {
                // Uniform in the inclusive range [min, max].
                let draw = net.latency_min_ms
                    + pag_membership::mix(h)
                        % (net.latency_max_ms.saturating_sub(net.latency_min_ms) + 1);
                due_ms = (Instant::now() - self.epoch).as_millis() as u64 + self.scale(draw);
            }
        }
        if let Some(coord) = &self.coord {
            coord.add(1);
        }
        // A receiver that already stopped is fine to lose.
        if self.peers[&to]
            .send(Envelope::Frame {
                bytes: frame,
                due_ms,
            })
            .is_err()
        {
            if let Some(coord) = &self.coord {
                coord.done();
            }
        }
    }

    /// Decodes an incoming frame, accounts it, and delivers it.
    fn deliver(&mut self, frame: Vec<u8>) {
        let parsed = decode_frame(&frame, &self.wire).expect("peer frames decode");
        debug_assert_eq!(parsed.to, self.id, "misrouted frame");
        self.traffic
            .record_recv(frame.len(), parsed.msg.body.traffic_class());
        self.feed(Input::Deliver {
            from: parsed.from,
            msg: parsed.msg,
        });
    }

    /// Fires every pending timer due at or before `upto`, in (due,
    /// arming-order) order.
    fn fire_due(&mut self, upto: u64) {
        loop {
            let Some(pos) = self
                .timers
                .iter()
                .enumerate()
                .filter(|(_, &(due, _, _))| due <= upto)
                .min_by_key(|(_, &(due, seq, _))| (due, seq))
                .map(|(i, _)| i)
            else {
                return;
            };
            let (due, _, tag) = self.timers.swap_remove(pos);
            self.now_ms = due.max(self.now_ms);
            self.feed(Input::TimerFired { tag });
        }
    }

    fn enter_round(&mut self, round: u64) {
        if self.lockstep() {
            self.now_ms = round * VIRTUAL_ROUND_MS;
        } else {
            self.now_ms = round * self.round_ms;
        }
        if self.crash_round.is_some_and(|cr| round >= cr) {
            self.crashed = true;
            self.timers.clear();
        }
        if self.crashed {
            self.delayed.clear();
        } else {
            // Lockstep holds round-start frames until the Flush barrier.
            // Churn announcements scheduled for this round ride in the
            // same phase, right after the round-start cascade.
            self.buffering = self.lockstep();
            self.feed(Input::RoundStart(round));
            let due: Vec<Input> = self
                .churn
                .iter()
                .filter(|&&(announce, _)| announce == round)
                .map(|(_, input)| input.clone())
                .collect();
            for input in due {
                self.feed(input);
            }
            self.buffering = false;
        }
    }

    fn run(mut self) -> WorkerResult {
        if self.lockstep() {
            // Unblock the coordinator if this thread dies mid-phase —
            // the join then surfaces the worker's panic instead of a
            // deadlocked wait_quiet.
            struct AbortOnPanic(Arc<Coordination>);
            impl Drop for AbortOnPanic {
                fn drop(&mut self) {
                    if thread::panicking() {
                        self.0.abort();
                    }
                }
            }
            let _guard = AbortOnPanic(Arc::clone(self.coord.as_ref().expect("lockstep")));
            self.run_lockstep();
        } else {
            self.run_realtime();
        }
        WorkerResult {
            id: self.id,
            engine: self.engine,
            traffic: self.traffic,
        }
    }

    fn run_lockstep(&mut self) {
        let coord = Arc::clone(self.coord.as_ref().expect("lockstep coordination"));
        while let Ok(envelope) = self.rx.recv() {
            match envelope {
                Envelope::Round(round) => self.enter_round(round),
                Envelope::Frame { bytes, .. } => {
                    // Lockstep: latency is not emulated; deliver in-phase.
                    if !self.crashed {
                        self.deliver(bytes);
                    }
                }
                Envelope::Flush => {
                    for (to, frame, class) in std::mem::take(&mut self.stash) {
                        self.ship(to, frame, class);
                    }
                }
                Envelope::TimersUpTo(upto) => {
                    if !self.crashed {
                        self.buffering = true;
                        self.fire_due(upto);
                        self.buffering = false;
                    }
                }
                Envelope::Stop => break,
            }
            coord.publish_deadline(self.idx, self.next_deadline());
            coord.done();
        }
    }

    fn run_realtime(&mut self) {
        loop {
            let envelope = match self.next_wake() {
                Some(due) => {
                    let due_at = self.epoch + Duration::from_millis(due);
                    let now = Instant::now();
                    if due_at <= now {
                        let upto = (now - self.epoch).as_millis() as u64;
                        self.release_delayed(upto);
                        if self.crashed {
                            self.timers.clear();
                        } else {
                            self.fire_due(upto);
                        }
                        continue;
                    }
                    match self.rx.recv_timeout(due_at - now) {
                        Ok(envelope) => envelope,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(envelope) => envelope,
                    Err(_) => return,
                },
            };
            match envelope {
                Envelope::Round(round) => self.enter_round(round),
                Envelope::Frame { bytes, due_ms } => {
                    let now = (Instant::now() - self.epoch).as_millis() as u64;
                    if due_ms > now {
                        self.delayed.push((due_ms, self.delay_seq, bytes));
                        self.delay_seq += 1;
                    } else if !self.crashed {
                        self.deliver(bytes);
                    }
                }
                Envelope::Flush | Envelope::TimersUpTo(_) => {}
                Envelope::Stop => return,
            }
        }
    }
}

/// Runs `engines` for `rounds` rounds on per-node threads.
///
/// Every engine's node must belong to `shared`'s key roster (initial
/// members plus scheduled joiners); `crashes` are fail-stop rounds per
/// node and `churn` the scheduled membership changes (each fed to its
/// subject's engine one round before it takes effect). Returns the
/// traffic report (protocol seconds; see [`crate::report`]) and the
/// final engines.
pub fn run_threaded(
    shared: &Arc<SharedContext>,
    engines: Vec<PagEngine>,
    rounds: u64,
    crashes: &[(NodeId, u64)],
    churn: &[ChurnEvent],
    cfg: &ThreadedConfig,
) -> ThreadedRun {
    let ids: Vec<NodeId> = engines.iter().map(|e| e.id()).collect();
    let n = ids.len();
    let coord = cfg.lockstep.then(|| Arc::new(Coordination::new(n)));
    let epoch = Instant::now();

    let mut senders: BTreeMap<NodeId, Sender<Envelope>> = BTreeMap::new();
    let mut receivers = Vec::with_capacity(n);
    for &id in &ids {
        let (tx, rx) = channel();
        senders.insert(id, tx);
        receivers.push(rx);
    }

    let mut handles = Vec::with_capacity(n);
    for (idx, (engine, rx)) in engines.into_iter().zip(receivers).enumerate() {
        let id = ids[idx];
        let worker = Worker {
            idx,
            id,
            engine,
            wire: shared.config.wire.clone(),
            rx,
            peers: senders.clone(),
            coord: coord.clone(),
            traffic: NodeTraffic::default(),
            timers: Vec::new(),
            timer_seq: 0,
            now_ms: 0,
            crash_round: crashes
                .iter()
                .filter(|(node, _)| *node == id)
                .map(|&(_, round)| round)
                .min(),
            crashed: false,
            effects: Vec::new(),
            stash: Vec::new(),
            buffering: false,
            epoch,
            round_ms: cfg.round_ms.max(1),
            churn: crate::churn::inputs_for(churn, id),
            net: cfg.net.clone(),
            net_seed: cfg.seed ^ 0x4E45_5445_4D55,
            delayed: Vec::new(),
            delay_seq: 0,
        };
        let handle = thread::Builder::new()
            .name(format!("pag-{id}"))
            .spawn(move || worker.run())
            .expect("spawn node thread");
        handles.push(handle);
    }

    let broadcast = |envelope_of: &dyn Fn() -> Envelope| {
        for tx in senders.values() {
            let _ = tx.send(envelope_of());
        }
    };

    match &coord {
        Some(coord) => {
            // Deterministic lockstep: barrier per round start, then one
            // barrier per distinct timer deadline within the round.
            'rounds: for round in 0..rounds {
                coord.add(n as u64);
                broadcast(&|| Envelope::Round(round));
                coord.wait_quiet();
                // Every node started the round; now release the stashed
                // round-start frames and let the cascades settle.
                coord.add(n as u64);
                broadcast(&|| Envelope::Flush);
                coord.wait_quiet();
                let round_end = (round + 1) * VIRTUAL_ROUND_MS;
                while let Some(deadline) = coord.min_deadline() {
                    if deadline >= round_end || coord.is_aborted() {
                        break;
                    }
                    coord.add(n as u64);
                    broadcast(&|| Envelope::TimersUpTo(deadline));
                    coord.wait_quiet();
                    coord.add(n as u64);
                    broadcast(&|| Envelope::Flush);
                    coord.wait_quiet();
                }
                if coord.is_aborted() {
                    break 'rounds;
                }
            }
        }
        None => {
            // Real time: rounds tick on the wall clock; one trailing
            // round lets late timers (offsets < 1 round) fire.
            let round_ms = cfg.round_ms.max(1);
            for round in 0..rounds {
                broadcast(&|| Envelope::Round(round));
                let next = epoch + Duration::from_millis((round + 1) * round_ms);
                thread::sleep(next.saturating_duration_since(Instant::now()));
            }
            thread::sleep(Duration::from_millis(round_ms));
        }
    }

    broadcast(&|| Envelope::Stop);
    drop(senders);

    let mut per_node = BTreeMap::new();
    let mut engines = BTreeMap::new();
    for handle in handles {
        let result = handle.join().expect("node thread panicked");
        per_node.insert(result.id, result.traffic);
        engines.insert(result.id, result.engine);
    }

    ThreadedRun {
        report: TrafficReport {
            duration: rounds as f64,
            rounds,
            per_node,
        },
        engines,
    }
}
