//! Property-based tests for `pag-bignum` core arithmetic invariants.

use pag_bignum::{BigUint, Montgomery};
use proptest::prelude::*;

/// Strategy producing arbitrary BigUints up to ~512 bits.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..8).prop_map(BigUint::from_limbs)
}

/// Strategy producing non-zero BigUints.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_filter("non-zero", |v| !v.is_zero())
}

/// Strategy producing odd moduli > 1.
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..6).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let v = BigUint::from_limbs(limbs);
        if v.is_one() {
            BigUint::from(3u64)
        } else {
            v
        }
    })
}

proptest! {
    #[test]
    fn add_commutative(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutative(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_invariant(a in biguint(), d in biguint_nonzero()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn shift_left_then_right(a in biguint(), bits in 0usize..200) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint(), bits in 0usize..100) {
        let pow2 = BigUint::one().shl_bits(bits);
        prop_assert_eq!(a.shl_bits(bits), &a * &pow2);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le_for_test()), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        let s = a.to_hex_string();
        prop_assert_eq!(BigUint::from_hex_str(&s).unwrap(), a);
    }

    #[test]
    fn mod_pow_matches_naive(
        base in biguint(),
        exp in 0u64..40,
        m in odd_modulus(),
    ) {
        let exp_big = BigUint::from(exp);
        let fast = base.mod_pow(&exp_big, &m);
        // Naive repeated multiplication.
        let mut acc = BigUint::one() % &m;
        let base_red = &base % &m;
        for _ in 0..exp {
            acc = acc.mod_mul(&base_red, &m);
        }
        prop_assert_eq!(fast, acc);
    }

    #[test]
    fn mod_pow_product_of_exponents(
        base in biguint(),
        p1 in 1u64..1000,
        p2 in 1u64..1000,
        m in odd_modulus(),
    ) {
        // The paper's exponent-composition property:
        // H(H(u)_(p1))_(p2) = H(u)_(p1*p2)
        let h1 = base.mod_pow(&BigUint::from(p1), &m);
        let h12 = h1.mod_pow(&BigUint::from(p2), &m);
        let direct = base.mod_pow(&BigUint::from(p1 * p2), &m);
        prop_assert_eq!(h12, direct);
    }

    #[test]
    fn montgomery_matches_plain(a in biguint(), b in biguint(), m in odd_modulus()) {
        let ctx = Montgomery::new(&m).unwrap();
        let ar = &a % &m;
        let br = &b % &m;
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&ar), &ctx.to_mont(&br)));
        prop_assert_eq!(got, ar.mod_mul(&br, &m));
    }

    #[test]
    fn mod_inv_is_inverse(a in biguint_nonzero(), m in odd_modulus()) {
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert!(a.mod_mul(&inv, &m).is_one());
            prop_assert!(inv < m);
        } else {
            // Not coprime: gcd must be > 1.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint(), b in biguint()) {
        if a >= b {
            prop_assert!(a.checked_sub(&b).is_some());
        } else {
            prop_assert!(a.checked_sub(&b).is_none());
        }
    }
}

/// Strategy producing odd moduli of 256–2048 bits (4–32 limbs), the
/// range the protocol's RSA and homomorphic moduli live in.
fn wide_odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 4..33).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let last = limbs.len() - 1;
        limbs[last] |= 1 << 63; // full declared width
        BigUint::from_limbs(limbs)
    })
}

/// Strategy producing operands up to 2048 bits, possibly unreduced.
fn wide_operand() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..33).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The windowed Montgomery exponentiation must agree bit-for-bit
    /// with naive square-and-multiply (divide-and-reduce per step, the
    /// same code path `mod_pow` uses for even moduli) across the full
    /// 256–2048-bit operand range, including unreduced bases.
    #[test]
    fn windowed_pow_matches_naive_square_multiply(
        base in wide_operand(),
        exp in wide_operand(),
        m in wide_odd_modulus(),
    ) {
        let ctx = Montgomery::new(&m).unwrap();
        let windowed = ctx.pow(&base, &exp);
        prop_assert_eq!(&windowed, &base.mod_pow_naive(&exp, &m));
        // And mod_pow (odd path) must route through the same result.
        prop_assert_eq!(&windowed, &base.mod_pow(&exp, &m));
    }

    /// The even-modulus fallback (mod_pow routes even moduli through
    /// mod_pow_naive) against an independent reference: a plain fold of
    /// modular multiplications.
    #[test]
    fn even_fallback_matches_repeated_multiplication(
        base in wide_operand(),
        exp in 0u64..400,
        m in wide_odd_modulus(),
    ) {
        let even_m = &m + &BigUint::one();
        let mut expected = BigUint::one() % &even_m;
        let base_red = &base % &even_m;
        for _ in 0..exp {
            expected = expected.mod_mul(&base_red, &even_m);
        }
        prop_assert_eq!(base.mod_pow(&BigUint::from(exp), &even_m), expected);
    }

    /// Machine-word exponent fast path (the RSA verify exponent lives
    /// here) against both the windowed and the naive path.
    #[test]
    fn pow_u64_matches_windowed_and_naive(
        base in wide_operand(),
        exp in any::<u64>(),
        m in wide_odd_modulus(),
    ) {
        let ctx = Montgomery::new(&m).unwrap();
        let fast = ctx.pow_u64(&base, exp);
        let exp_big = BigUint::from(exp);
        prop_assert_eq!(&fast, &ctx.pow(&base, &exp_big));
        prop_assert_eq!(&fast, &base.mod_pow_naive(&exp_big, &m));
    }

    /// Division-free modular product against multiply-then-divide.
    #[test]
    fn mul_mod_matches_mod_mul(
        a in wide_operand(),
        b in wide_operand(),
        m in wide_odd_modulus(),
    ) {
        let ctx = Montgomery::new(&m).unwrap();
        let ar = &a % &m;
        let br = &b % &m;
        prop_assert_eq!(ctx.mul_mod(&ar, &br), ar.mod_mul(&br, &m));
    }

    /// The Montgomery accumulator equals a fold of mod_mul.
    #[test]
    fn accumulator_matches_mod_mul_fold(
        values in proptest::collection::vec((1u64..1 << 48).prop_map(BigUint::from), 0..12),
        counts in proptest::collection::vec(0u32..6, 12..13),
        m in wide_odd_modulus(),
    ) {
        let ctx = Montgomery::new(&m).unwrap();
        let mut acc = pag_bignum::MontAccumulator::new(&ctx);
        let mut expected = BigUint::one() % &m;
        for (v, &c) in values.iter().zip(counts.iter()) {
            let vr = v % &m;
            acc.mul_pow(&vr, c);
            for _ in 0..c {
                expected = expected.mod_mul(&vr, &m);
            }
        }
        prop_assert_eq!(acc.finish(), expected);
    }
}

/// Edge cases the window scanner must not mishandle.
#[test]
fn windowed_pow_edge_cases() {
    let m = BigUint::from_hex_str(
        "f7f6f5f4f3f2f1f0e7e6e5e4e3e2e1e0d7d6d5d4d3d2d1d0c7c6c5c4c3c2c1c1",
    )
    .unwrap();
    let ctx = Montgomery::new(&m).unwrap();
    let big_base = BigUint::one().shl_bits(4000) + BigUint::from(12345u64);

    // Zero exponent: x^0 = 1 for any base, reduced or not.
    assert!(ctx.pow(&big_base, &BigUint::zero()).is_one());
    assert!(ctx.pow(&BigUint::zero(), &BigUint::zero()).is_one());

    // Exponent one returns the reduced base.
    assert_eq!(ctx.pow(&big_base, &BigUint::one()), &big_base % &m);

    // Unreduced base agrees with the naive path on a nontrivial exponent.
    let exp = BigUint::from(0xdead_beef_1234u64);
    assert_eq!(ctx.pow(&big_base, &exp), big_base.mod_pow_naive(&exp, &m));

    // Zero base annihilates for positive exponents.
    assert!(ctx.pow(&BigUint::zero(), &exp).is_zero());

    // Exponent exactly at a window boundary (multiple of 4 and 5 bits).
    let exp20 = BigUint::from((1u64 << 20) - 1);
    assert_eq!(ctx.pow(&big_base, &exp20), big_base.mod_pow_naive(&exp20, &m));
}

// Helper for byte roundtrip test: expose LE encoding via BE reversal.
trait ToBytesLe {
    fn to_bytes_le_for_test(&self) -> Vec<u8>;
}

impl ToBytesLe for BigUint {
    fn to_bytes_le_for_test(&self) -> Vec<u8> {
        let mut v = self.to_bytes_be();
        v.reverse();
        v
    }
}
