//! Property-based tests for `pag-bignum` core arithmetic invariants.

use pag_bignum::{BigUint, Montgomery};
use proptest::prelude::*;

/// Strategy producing arbitrary BigUints up to ~512 bits.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..8).prop_map(BigUint::from_limbs)
}

/// Strategy producing non-zero BigUints.
fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_filter("non-zero", |v| !v.is_zero())
}

/// Strategy producing odd moduli > 1.
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..6).prop_map(|mut limbs| {
        limbs[0] |= 1;
        let v = BigUint::from_limbs(limbs);
        if v.is_one() {
            BigUint::from(3u64)
        } else {
            v
        }
    })
}

proptest! {
    #[test]
    fn add_commutative(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutative(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_invariant(a in biguint(), d in biguint_nonzero()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn shift_left_then_right(a in biguint(), bits in 0usize..200) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in biguint(), bits in 0usize..100) {
        let pow2 = BigUint::one().shl_bits(bits);
        prop_assert_eq!(a.shl_bits(bits), &a * &pow2);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le_for_test()), a);
    }

    #[test]
    fn decimal_roundtrip(a in biguint()) {
        let s = a.to_decimal_string();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in biguint()) {
        let s = a.to_hex_string();
        prop_assert_eq!(BigUint::from_hex_str(&s).unwrap(), a);
    }

    #[test]
    fn mod_pow_matches_naive(
        base in biguint(),
        exp in 0u64..40,
        m in odd_modulus(),
    ) {
        let exp_big = BigUint::from(exp);
        let fast = base.mod_pow(&exp_big, &m);
        // Naive repeated multiplication.
        let mut acc = BigUint::one() % &m;
        let base_red = &base % &m;
        for _ in 0..exp {
            acc = acc.mod_mul(&base_red, &m);
        }
        prop_assert_eq!(fast, acc);
    }

    #[test]
    fn mod_pow_product_of_exponents(
        base in biguint(),
        p1 in 1u64..1000,
        p2 in 1u64..1000,
        m in odd_modulus(),
    ) {
        // The paper's exponent-composition property:
        // H(H(u)_(p1))_(p2) = H(u)_(p1*p2)
        let h1 = base.mod_pow(&BigUint::from(p1), &m);
        let h12 = h1.mod_pow(&BigUint::from(p2), &m);
        let direct = base.mod_pow(&BigUint::from(p1 * p2), &m);
        prop_assert_eq!(h12, direct);
    }

    #[test]
    fn montgomery_matches_plain(a in biguint(), b in biguint(), m in odd_modulus()) {
        let ctx = Montgomery::new(&m).unwrap();
        let ar = &a % &m;
        let br = &b % &m;
        let got = ctx.from_mont(&ctx.mont_mul(&ctx.to_mont(&ar), &ctx.to_mont(&br)));
        prop_assert_eq!(got, ar.mod_mul(&br, &m));
    }

    #[test]
    fn mod_inv_is_inverse(a in biguint_nonzero(), m in odd_modulus()) {
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert!(a.mod_mul(&inv, &m).is_one());
            prop_assert!(inv < m);
        } else {
            // Not coprime: gcd must be > 1.
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in biguint(), b in biguint()) {
        if a >= b {
            prop_assert!(a.checked_sub(&b).is_some());
        } else {
            prop_assert!(a.checked_sub(&b).is_none());
        }
    }
}

// Helper for byte roundtrip test: expose LE encoding via BE reversal.
trait ToBytesLe {
    fn to_bytes_le_for_test(&self) -> Vec<u8>;
}

impl ToBytesLe for BigUint {
    fn to_bytes_le_for_test(&self) -> Vec<u8> {
        let mut v = self.to_bytes_be();
        v.reverse();
        v
    }
}
