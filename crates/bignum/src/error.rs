//! Error types for the bignum crate.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`crate::BigUint`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBigUintError {
    /// The input string was empty.
    Empty,
    /// The input contained a byte that is not a valid digit for the base.
    InvalidDigit,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBigUintError::Empty => f.write_str("cannot parse integer from empty string"),
            ParseBigUintError::InvalidDigit => f.write_str("invalid digit found in string"),
        }
    }
}

impl Error for ParseBigUintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_punctuation() {
        for e in [ParseBigUintError::Empty, ParseBigUintError::InvalidDigit] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ParseBigUintError>();
    }
}
