//! Arbitrary-precision unsigned integer arithmetic for the PAG
//! (*Private and Accountable Gossip*, ICDCS 2016) reproduction.
//!
//! The paper's cryptographic machinery — RSA-2048 signatures and the
//! homomorphic hash `H(u)_(p,M) = u^p mod M` over a 512-bit modulus — needs
//! multi-precision modular arithmetic. This crate provides exactly that,
//! built from scratch on `u64` limbs:
//!
//! * [`BigUint`] — the integer type, with full operator support.
//! * [`Montgomery`] — reusable context for fast modular exponentiation.
//! * [`gen_prime`] / [`BigUint::is_probable_prime`] — Miller–Rabin based
//!   prime generation (PAG receivers mint one prime per predecessor per
//!   round; RSA key generation needs two large primes).
//! * [`random_bits`] / [`random_below`] — uniform random values.
//!
//! # Examples
//!
//! The homomorphic property the whole paper rests on,
//! `H(u1)·H(u2) = H(u1·u2) (mod M)`:
//!
//! ```
//! use pag_bignum::{gen_prime, random_below, BigUint};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let m = &gen_prime(64, &mut rng) * &gen_prime(64, &mut rng);
//! let p = gen_prime(32, &mut rng);
//! let u1 = random_below(&mut rng, &m);
//! let u2 = random_below(&mut rng, &m);
//!
//! let h1 = u1.mod_pow(&p, &m);
//! let h2 = u2.mod_pow(&p, &m);
//! let h12 = u1.mod_mul(&u2, &m).mod_pow(&p, &m);
//! assert_eq!(h1.mod_mul(&h2, &m), h12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod div;
mod error;
mod modular;
mod montgomery;
mod mul;
mod prime;
mod random;
mod uint;

pub use error::ParseBigUintError;
pub use montgomery::{MontAccumulator, Montgomery};
pub use prime::{gen_prime, gen_prime_below, DEFAULT_MILLER_RABIN_ROUNDS};
pub use random::{random_below, random_bits, random_range};
pub use uint::BigUint;
