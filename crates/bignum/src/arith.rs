//! Addition, subtraction, comparison helpers and shift operators.

use std::ops::{Add, AddAssign, Shl, Shr, Sub, SubAssign};

use crate::BigUint;

impl BigUint {
    /// Adds two values.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u128;
        for (i, &limb) in longer.iter().enumerate() {
            let sum = limb as u128 + *shorter.get(i).unwrap_or(&0) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Subtracts `other` from `self`, returning `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let diff =
                self.limbs[i] as i128 - *other.limbs.get(i).unwrap_or(&0) as i128 + borrow;
            out.push(diff as u64);
            borrow = diff >> 64; // arithmetic shift: 0 or -1
        }
        debug_assert_eq!(borrow, 0, "no final borrow when self >= other");
        Some(BigUint::from_limbs(out))
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub_ref(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Left-shifts by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right-shifts by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_fn(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_fn(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Sub, sub, sub_ref);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self.sub_ref(rhs);
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn add_with_carry_propagation() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let one = BigUint::one();
        let sum = &a + &one;
        assert_eq!(sum.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn add_zero_identity() {
        let a = BigUint::from(12345u64);
        assert_eq!(&a + &BigUint::zero(), a);
    }

    #[test]
    fn sub_roundtrip() {
        let a = BigUint::from_limbs(vec![3, 9, 1]);
        let b = BigUint::from_limbs(vec![u64::MAX, 4]);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
        assert_eq!(&sum - &a, b);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from(1u64);
        let b = BigUint::from(2u64);
        assert!(a.checked_sub(&b).is_none());
        assert_eq!(b.checked_sub(&a), Some(BigUint::one()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::zero() - BigUint::one();
    }

    #[test]
    fn sub_borrow_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let one = BigUint::one();
        assert_eq!((&a - &one).limbs(), &[u64::MAX]);
    }

    #[test]
    fn shifts_inverse() {
        let v = BigUint::from(0xdead_beefu64);
        for bits in [0usize, 1, 63, 64, 65, 130] {
            let shifted = v.shl_bits(bits);
            assert_eq!(shifted.shr_bits(bits), v, "shift by {bits}");
        }
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let v = BigUint::from(0b101u64);
        assert_eq!(v.shl_bits(3).to_u64(), Some(0b101000));
        assert_eq!((&v << 64).limbs(), &[0, 0b101]);
    }

    #[test]
    fn shr_to_zero() {
        let v = BigUint::from(0xffu64);
        assert!(v.shr_bits(9).is_zero());
        assert!((&v >> 1000).is_zero());
    }

    #[test]
    fn assign_ops() {
        let mut a = BigUint::from(10u64);
        a += &BigUint::from(5u64);
        assert_eq!(a.to_u64(), Some(15));
        a -= &BigUint::from(7u64);
        assert_eq!(a.to_u64(), Some(8));
    }
}
