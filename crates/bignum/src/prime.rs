//! Primality testing (Miller–Rabin) and random prime generation.
//!
//! PAG's receivers generate one fresh prime per predecessor per round
//! (§V-A), and RSA key generation needs two large primes, so prime
//! generation speed matters: candidates are first sieved against small
//! primes before any Miller–Rabin round runs.
//!
//! Determinism contract: every draw from the caller's RNG — candidate
//! draws and Miller–Rabin witness draws — happens in a fixed order that
//! the fast paths below must never change. Session seeds flow through
//! prime generation into partner selection, so consuming one extra (or
//! one fewer) random value here would silently reshuffle every
//! downstream gossip topology. The word-sized fast paths therefore
//! mirror the multi-limb control flow draw for draw and only change the
//! *arithmetic* (u64/u128 instead of allocated `BigUint`s); the
//! `fast_paths_preserve_rng_stream` test pins this.

use rand::Rng;
use std::sync::OnceLock;

use crate::random::random_bits;
use crate::{BigUint, Montgomery};

/// Number of Miller–Rabin rounds used by [`gen_prime`] and
/// [`BigUint::is_probable_prime`]'s default. 2^-128 error bound for random inputs.
pub const DEFAULT_MILLER_RABIN_ROUNDS: usize = 32;

/// Upper bound of the trial-division sieve.
const SIEVE_LIMIT: usize = 1 << 14;

fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let mut is_composite = vec![false; SIEVE_LIMIT];
        let mut primes = Vec::new();
        for n in 2..SIEVE_LIMIT {
            if !is_composite[n] {
                primes.push(n as u64);
                let mut k = n * n;
                while k < SIEVE_LIMIT {
                    is_composite[k] = true;
                    k += n;
                }
            }
        }
        primes
    })
}

/// `n mod m` for a word-sized modulus, folding limbs without allocating.
fn rem_u64(n: &BigUint, m: u64) -> u64 {
    let mut r: u128 = 0;
    for &limb in n.limbs().iter().rev() {
        r = ((r << 64) | limb as u128) % m as u128;
    }
    r as u64
}

fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod_u64(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u64(acc, base, m);
        }
        base = mul_mod_u64(base, base, m);
        exp >>= 1;
    }
    acc
}

impl BigUint {
    /// Probabilistic primality test: trial division by all primes below
    /// 2^14, then `rounds` Miller–Rabin rounds with random bases.
    ///
    /// False positives occur with probability at most `4^-rounds`;
    /// a return value of `false` is always correct.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rounds: usize, rng: &mut R) -> bool {
        // Small and even cases.
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v < (SIEVE_LIMIT * SIEVE_LIMIT) as u64 {
                return small_primes()
                    .iter()
                    .take_while(|&&p| p * p <= v)
                    .all(|&p| v % p != 0)
                    || small_primes().binary_search(&v).is_ok();
            }
            // Word-sized fast path: same sieve, same witness schedule as
            // the multi-limb path below, in u64/u128 arithmetic. `v` is
            // above the sieve's square here, so a sieve hit is always
            // composite.
            if v & 1 == 0 {
                return false;
            }
            if small_primes().iter().any(|&p| v % p == 0) {
                return false;
            }
            return miller_rabin_u64(v, rounds, rng);
        }
        if self.is_even() {
            return false;
        }
        for &p in small_primes() {
            if rem_u64(self, p) == 0 {
                // Multi-limb values exceed every sieve prime.
                return false;
            }
        }
        miller_rabin(self, rounds, rng)
    }
}

/// Runs `rounds` Miller–Rabin rounds with uniformly random bases in `[2, n-2]`.
///
/// Requires `n` odd and `> small_primes` (callers go through
/// [`BigUint::is_probable_prime`]). One Montgomery context is built per
/// call and shared by every witness exponentiation.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u64);
    let n_minus_1 = n - &one;
    // n - 1 = d * 2^s with d odd
    let s = n_minus_1
        .trailing_zeros()
        .expect("n > 2 is odd so n-1 > 0");
    let d = n_minus_1.shr_bits(s);
    let Some(ctx) = Montgomery::new(n) else {
        return false; // unreachable: n is odd
    };

    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let a = loop {
            let cand = random_bits(rng, n.bit_len());
            if cand >= two && cand <= (&n_minus_1 - &one) {
                break cand;
            }
        };
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.mul_mod(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// [`miller_rabin`] for word-sized `n`: identical witness draws (one
/// `u64` per `random_bits` call at these widths, same rejection bounds),
/// identical accept/reject decisions, u128 arithmetic.
fn miller_rabin_u64<R: Rng + ?Sized>(n: u64, rounds: usize, rng: &mut R) -> bool {
    let bits = 64 - n.leading_zeros() as usize;
    let n_minus_1 = n - 1;
    let s = n_minus_1.trailing_zeros();
    let d = n_minus_1 >> s;

    'witness: for _ in 0..rounds {
        // Mirrors `random_bits(rng, bits)` for bits in (28, 64]: one limb
        // drawn, shifted down to width — byte-for-byte the same RNG use.
        let a = loop {
            let cand = rng.random::<u64>() >> ((64 - bits) as u32);
            if cand >= 2 && cand <= n - 2 {
                break cand;
            }
        };
        let mut x = pow_mod_u64(a, d, n);
        if x == 1 || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The top two bits are forced to one (so products of two such primes have
/// exactly `2*bits` bits, as RSA key generation requires) and the bottom
/// bit is forced odd.
///
/// # Panics
///
/// Panics if `bits < 3` (no such prime shape exists).
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "prime generation needs at least 3 bits");
    loop {
        let mut cand = random_bits(rng, bits);
        cand.set_bit(bits - 1);
        cand.set_bit(bits - 2);
        cand.set_bit(0);
        // March forward over odd numbers: amortizes the sieve per candidate.
        let two = BigUint::from(2u64);
        for _ in 0..64 {
            if cand.bit_len() != bits {
                break; // stepped past the width; draw a fresh candidate
            }
            if cand.is_probable_prime(DEFAULT_MILLER_RABIN_ROUNDS, rng) {
                return cand;
            }
            cand = &cand + &two;
        }
    }
}

/// Generates a random probable prime strictly smaller than `bound`.
///
/// Used by tests that need primes co-prime to a given modulus.
///
/// # Panics
///
/// Panics if `bound <= 3`.
pub fn gen_prime_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(bound > &BigUint::from(3u64), "bound too small");
    loop {
        let cand = crate::random::random_below(rng, bound);
        if cand.is_probable_prime(DEFAULT_MILLER_RABIN_ROUNDS, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// The pre-optimization primality test, kept verbatim as the
    /// reference the fast paths must match draw for draw: BigUint trial
    /// division and `mod_pow`-based Miller–Rabin for everything above
    /// the small-value cutoff.
    fn reference_is_probable_prime<R: Rng + ?Sized>(
        n: &BigUint,
        rounds: usize,
        rng: &mut R,
    ) -> bool {
        if let Some(v) = n.to_u64() {
            if v < 2 {
                return false;
            }
            if v < (SIEVE_LIMIT * SIEVE_LIMIT) as u64 {
                return small_primes()
                    .iter()
                    .take_while(|&&p| p * p <= v)
                    .all(|&p| v % p != 0)
                    || small_primes().binary_search(&v).is_ok();
            }
        }
        if n.is_even() {
            return false;
        }
        for &p in small_primes() {
            let p_big = BigUint::from(p);
            if (n % &p_big).is_zero() {
                return n == &p_big;
            }
        }
        let one = BigUint::one();
        let two = BigUint::from(2u64);
        let n_minus_1 = n - &one;
        let s = n_minus_1.trailing_zeros().expect("odd n > 2");
        let d = n_minus_1.shr_bits(s);
        'witness: for _ in 0..rounds {
            let a = loop {
                let cand = random_bits(rng, n.bit_len());
                if cand >= two && cand <= (&n_minus_1 - &one) {
                    break cand;
                }
            };
            let mut x = a.mod_pow(&d, n);
            if x.is_one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, n);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// `gen_prime` over the reference test — the exact pre-optimization
    /// generator.
    fn reference_gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        loop {
            let mut cand = random_bits(rng, bits);
            cand.set_bit(bits - 1);
            cand.set_bit(bits - 2);
            cand.set_bit(0);
            let two = BigUint::from(2u64);
            for _ in 0..64 {
                if cand.bit_len() != bits {
                    break;
                }
                if reference_is_probable_prime(&cand, DEFAULT_MILLER_RABIN_ROUNDS, rng) {
                    return cand;
                }
                cand = &cand + &two;
            }
        }
    }

    #[test]
    fn fast_paths_preserve_rng_stream() {
        // Identical primes AND identical RNG positions afterwards: the
        // optimized paths must consume exactly the draws the reference
        // consumed, or every seeded session topology downstream shifts.
        for bits in [32usize, 48, 64, 128, 256] {
            for seed in 0..4u64 {
                let mut fast_rng = StdRng::seed_from_u64(seed * 31 + bits as u64);
                let mut ref_rng = fast_rng.clone();
                let fast = gen_prime(bits, &mut fast_rng);
                let reference = reference_gen_prime(bits, &mut ref_rng);
                assert_eq!(fast, reference, "prime diverged at bits={bits} seed={seed}");
                assert_eq!(
                    fast_rng.random::<u128>(),
                    ref_rng.random::<u128>(),
                    "RNG position diverged at bits={bits} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn fast_test_agrees_with_reference_on_word_sized_values() {
        // Composite and prime u64 values above the small cutoff, with
        // matched RNG streams on both sides.
        let mut base = rng();
        for _ in 0..40 {
            let v = base.random::<u64>() | (1 << 63);
            let n = BigUint::from(v);
            let mut a = StdRng::seed_from_u64(v);
            let mut b = a.clone();
            assert_eq!(
                n.is_probable_prime(16, &mut a),
                reference_is_probable_prime(&n, 16, &mut b),
                "verdict diverged for {v}"
            );
            assert_eq!(a.random::<u128>(), b.random::<u128>(), "draws diverged for {v}");
        }
    }

    #[test]
    fn rem_u64_matches_biguint_rem() {
        let mut r = rng();
        for _ in 0..50 {
            let n = random_bits(&mut r, 200);
            let m = r.random::<u64>() | 1;
            let expect = (&n % &BigUint::from(m)).to_u64().unwrap_or(0);
            assert_eq!(rem_u64(&n, m), expect);
        }
    }

    #[test]
    fn small_prime_classification() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919, 104729];
        let composites = [0u64, 1, 4, 6, 9, 15, 7917, 104730, 1_000_000];
        for p in primes {
            assert!(BigUint::from(p).is_probable_prime(16, &mut r), "{p}");
        }
        for c in composites {
            assert!(!BigUint::from(c).is_probable_prime(16, &mut r), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!BigUint::from(c).is_probable_prime(16, &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_prime_accepted() {
        // 2^127 - 1 is a Mersenne prime.
        let mut r = rng();
        let m127 = BigUint::one().shl_bits(127) - BigUint::one();
        assert!(m127.is_probable_prime(16, &mut r));
        // 2^128 - 1 is composite.
        let m128 = BigUint::one().shl_bits(128) - BigUint::one();
        assert!(!m128.is_probable_prime(16, &mut r));
    }

    #[test]
    fn word_sized_known_primes_accepted() {
        let mut r = rng();
        // 2^61 - 1 is a Mersenne prime; 2^64 - 59 is the largest 64-bit prime.
        for p in [(1u64 << 61) - 1, u64::MAX - 58] {
            assert!(BigUint::from(p).is_probable_prime(16, &mut r), "{p}");
        }
        // Neighbours are composite.
        for c in [(1u64 << 61) + 1, u64::MAX - 57, u64::MAX] {
            assert!(!BigUint::from(c).is_probable_prime(16, &mut r), "{c}");
        }
    }

    #[test]
    fn gen_prime_has_requested_shape() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128, 256] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits, "bits = {bits}");
            assert!(p.is_odd());
            assert!(p.bit(bits - 2), "second-highest bit set");
            assert!(p.is_probable_prime(16, &mut r));
        }
    }

    #[test]
    fn gen_prime_512_bits() {
        // The paper's prime size for round keys (§VII-A).
        let mut r = rng();
        let p = gen_prime(512, &mut r);
        assert_eq!(p.bit_len(), 512);
        assert!(p.is_probable_prime(8, &mut r));
    }

    #[test]
    fn distinct_primes_generated() {
        let mut r = rng();
        let a = gen_prime(64, &mut r);
        let b = gen_prime(64, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn gen_prime_below_bound() {
        let mut r = rng();
        let bound = BigUint::from(1_000_000u64);
        for _ in 0..5 {
            let p = gen_prime_below(&bound, &mut r);
            assert!(p < bound);
            assert!(p.is_probable_prime(16, &mut r));
        }
    }

    #[test]
    fn sieve_contains_expected_primes() {
        let primes = small_primes();
        assert_eq!(primes[0], 2);
        assert_eq!(primes[1], 3);
        assert!(primes.binary_search(&16381).is_ok()); // largest prime < 2^14
        assert!(primes.binary_search(&16383).is_err());
    }
}
