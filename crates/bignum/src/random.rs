//! Uniform random [`BigUint`] generation.

use rand::Rng;

use crate::BigUint;

/// Returns a uniformly random value with at most `bits` bits.
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs_needed = bits.div_ceil(64);
    let mut limbs = Vec::with_capacity(limbs_needed);
    for _ in 0..limbs_needed {
        limbs.push(rng.random::<u64>());
    }
    let excess = limbs_needed * 64 - bits;
    if excess > 0 {
        let last = limbs.last_mut().expect("at least one limb");
        *last >>= excess;
    }
    BigUint::from_limbs(limbs)
}

/// Returns a uniformly random value in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty range");
    let bits = bound.bit_len();
    loop {
        let cand = random_bits(rng, bits);
        if &cand < bound {
            return cand;
        }
    }
}

/// Returns a uniformly random value in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn random_range<R: Rng + ?Sized>(rng: &mut R, lo: &BigUint, hi: &BigUint) -> BigUint {
    assert!(lo < hi, "empty range");
    let width = hi - lo;
    lo + &random_below(rng, &width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_respects_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [0usize, 1, 7, 64, 65, 512] {
            for _ in 0..20 {
                let v = random_bits(&mut rng, bits);
                assert!(v.bit_len() <= bits, "bits = {bits}");
            }
        }
    }

    #[test]
    fn random_bits_reaches_top_bit() {
        let mut rng = StdRng::seed_from_u64(2);
        // Over 64 draws of 8 bits, the top bit should be hit with
        // probability 1 - 2^-64.
        let hit = (0..64).any(|_| random_bits(&mut rng, 8).bit(7));
        assert!(hit);
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from(1000u64);
        for _ in 0..100 {
            assert!(random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_below_one_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(random_below(&mut rng, &BigUint::one()).is_zero());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_below_zero_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        random_below(&mut rng, &BigUint::zero());
    }

    #[test]
    fn random_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let lo = BigUint::from(500u64);
        let hi = BigUint::from(600u64);
        for _ in 0..50 {
            let v = random_range(&mut rng, &lo, &hi);
            assert!(v >= lo && v < hi);
        }
    }
}
