//! The [`BigUint`] type: an arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `u64` limbs with no trailing zero limbs
//! (the canonical representation of zero is an empty limb vector). All
//! constructors normalize, so two equal values always have identical limb
//! vectors, which makes the derived `PartialEq`/`Hash` correct.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::error::ParseBigUintError;

/// An arbitrary-precision unsigned integer.
///
/// `BigUint` backs every cryptographic quantity in the PAG reproduction:
/// RSA moduli, homomorphic-hash values, and the per-round prime keys
/// `K(R, X)`. It supports the usual arithmetic operators plus
/// modular routines (`mod_pow`, `mod_inv`, ...) and the [`crate::Montgomery`] context.
///
/// # Examples
///
/// ```
/// use pag_bignum::BigUint;
///
/// let a = BigUint::from(42u64);
/// let b = BigUint::from_decimal_str("340282366920938463463374607431768211456")?;
/// let c = &a * &b;
/// assert_eq!(c % &a, BigUint::zero());
/// # Ok::<(), pag_bignum::ParseBigUintError>(())
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// Returns zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Exposes the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Builds a value from big-endian bytes.
    ///
    /// Leading zero bytes are permitted and ignored.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let chunk_iter = bytes.rchunks(8);
        for chunk in chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Builds a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut rev: Vec<u8> = bytes.to_vec();
        rev.reverse();
        Self::from_bytes_be(&rev)
    }

    /// Serializes to big-endian bytes without leading zeros.
    ///
    /// Zero serializes to an empty vector.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, zero-padded on the left.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes but {} were requested",
            raw.len(),
            len
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Returns true if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns true if the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns true if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (zero has bit length 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the value if needed.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 64);
    }

    /// Number of trailing zero bits.
    ///
    /// Returns `None` for zero (every bit of zero is a trailing zero).
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i * 64 + limb.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] on an empty string or a non-digit byte.
    pub fn from_decimal_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut acc = BigUint::zero();
        let ten_pow_19 = BigUint::from(10_000_000_000_000_000_000u64);
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let chunk_len = (bytes.len() - i).min(19);
            let chunk = &s[i..i + chunk_len];
            let digits: u64 = chunk
                .parse()
                .map_err(|_| ParseBigUintError::InvalidDigit)?;
            let scale = if chunk_len == 19 {
                ten_pow_19.clone()
            } else {
                BigUint::from(10u64.pow(chunk_len as u32))
            };
            acc = &(&acc * &scale) + &BigUint::from(digits);
            i += chunk_len;
        }
        Ok(acc)
    }

    /// Parses a hexadecimal string (no `0x` prefix).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] on an empty string or a non-hex byte.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError::Empty);
        }
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.bytes() {
            let v = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(ParseBigUintError::InvalidDigit),
            };
            nibbles.push(v);
        }
        let mut bytes = Vec::with_capacity(nibbles.len() / 2 + 1);
        let iter = nibbles.rchunks(2);
        for pair in iter {
            let byte = match pair {
                [hi, lo] => (hi << 4) | lo,
                [lo] => *lo,
                _ => unreachable!(),
            };
            bytes.push(byte);
        }
        bytes.reverse();
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Formats the value as lowercase hexadecimal without a prefix.
    pub fn to_hex_string(&self) -> String {
        format!("{self:x}")
    }

    /// Formats the value in decimal.
    pub fn to_decimal_string(&self) -> String {
        format!("{self}")
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{self:x})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        f.write_str(&s)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let ten_pow_19 = BigUint::from(10_000_000_000_000_000_000u64);
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&ten_pow_19);
            chunks.push(r.to_u64().expect("remainder below 10^19 fits in u64"));
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().enumerate().rev() {
            if i == chunks.len() - 1 {
                s.push_str(&format!("{chunk}"));
            } else {
                s.push_str(&format!("{chunk:019}"));
            }
        }
        f.write_str(&s)
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            BigUint::from_hex_str(hex)
        } else {
            BigUint::from_decimal_str(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_bytes_be(), Vec::<u8>::new());
        assert_eq!(z.to_u64(), Some(0));
    }

    #[test]
    fn from_limbs_normalizes() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs(), &[5]);
        assert_eq!(v, BigUint::from(5u64));
    }

    #[test]
    fn byte_roundtrip_be() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(v.to_bytes_be(), bytes.to_vec());
    }

    #[test]
    fn byte_roundtrip_le() {
        let v = BigUint::from_bytes_le(&[0xff, 0x01]);
        assert_eq!(v.to_u64(), Some(0x01ff));
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        let v = BigUint::from_bytes_be(&[0, 0, 0x12, 0x34]);
        assert_eq!(v.to_u64(), Some(0x1234));
        assert_eq!(v.to_bytes_be(), vec![0x12, 0x34]);
    }

    #[test]
    fn padded_serialization() {
        let v = BigUint::from(0x1234u64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn padded_serialization_too_small_panics() {
        BigUint::from(0x123456u64).to_bytes_be_padded(2);
    }

    #[test]
    fn bit_len_and_bits() {
        let v = BigUint::from(0b1011u64);
        assert_eq!(v.bit_len(), 4);
        assert!(v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(200));
    }

    #[test]
    fn set_bit_grows() {
        let mut v = BigUint::zero();
        v.set_bit(100);
        assert_eq!(v.bit_len(), 101);
        assert!(v.bit(100));
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::from(8u64).trailing_zeros(), Some(3));
        let mut big = BigUint::zero();
        big.set_bit(130);
        assert_eq!(big.trailing_zeros(), Some(130));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let v = BigUint::from_decimal_str(s).unwrap();
        assert_eq!(v.to_decimal_string(), s);
    }

    #[test]
    fn hex_roundtrip() {
        let s = "deadbeef0123456789abcdef";
        let v = BigUint::from_hex_str(s).unwrap();
        assert_eq!(v.to_hex_string(), s);
    }

    #[test]
    fn from_str_accepts_both_bases() {
        let d: BigUint = "255".parse().unwrap();
        let h: BigUint = "0xff".parse().unwrap();
        assert_eq!(d, h);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::from_decimal_str("").is_err());
        assert!(BigUint::from_decimal_str("12a").is_err());
        assert!(BigUint::from_hex_str("xyz").is_err());
    }

    #[test]
    fn u128_conversions() {
        let v = BigUint::from(u128::MAX);
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.bit_len(), 128);
    }

    #[test]
    fn display_zero() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", BigUint::zero()).is_empty());
    }
}
