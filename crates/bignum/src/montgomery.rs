//! Montgomery modular multiplication and exponentiation (CIOS variant).
//!
//! All hot-path modular exponentiations in the reproduction — RSA
//! signing/verification and homomorphic hashing — run through this context,
//! which avoids per-step divisions by keeping operands in Montgomery form.

use crate::BigUint;

/// Precomputed context for modular arithmetic with a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use pag_bignum::{BigUint, Montgomery};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let ctx = Montgomery::new(&m).expect("odd modulus");
/// let r = ctx.pow(&BigUint::from(2u64), &BigUint::from(100u64));
/// assert_eq!(r, BigUint::from(2u64).mod_pow(&BigUint::from(100u64), &m));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus `n` (odd, > 1).
    n: BigUint,
    /// Limb count of `n`.
    k: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`; used to convert into Montgomery form.
    r2: BigUint,
    /// `R mod n`, the Montgomery representation of 1.
    one: BigUint,
}

impl Montgomery {
    /// Builds a context for an odd modulus greater than one.
    ///
    /// Returns `None` when the modulus is even, zero, or one.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let k = modulus.limbs.len();
        let n0_inv = neg_inv_u64(modulus.limbs[0]);
        let r = BigUint::one().shl_bits(64 * k);
        let one = &r % modulus;
        let r2 = (&r * &r) % modulus;
        Some(Montgomery {
            n: modulus.clone(),
            k,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Converts a reduced value (`< n`) into Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        debug_assert!(a < &self.n, "operand must be reduced");
        self.mont_mul(a, &self.r2)
    }

    /// Converts a value out of Montgomery form.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product: `a * b * R^{-1} mod n`.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.k;
        // t has k + 2 limbs of headroom: accumulated value stays < 2n < 2^(64(k+1)).
        let mut t = vec![0u64; k + 2];
        let a_limbs = &a.limbs;
        let b_limbs = &b.limbs;

        for i in 0..k {
            let ai = *a_limbs.get(i).unwrap_or(&0);
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let sum = t[j] as u128
                    + ai as u128 * *b_limbs.get(j).unwrap_or(&0) as u128
                    + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k] = sum as u64;
            t[k + 1] = t[k + 1].wrapping_add((sum >> 64) as u64);

            // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: u128 = 0;
            for j in 0..k {
                let sum = t[j] as u128 + m as u128 * self.n.limbs[j] as u128 + carry;
                t[j] = sum as u64;
                carry = sum >> 64;
            }
            let sum = t[k] as u128 + carry;
            t[k] = sum as u64;
            t[k + 1] = t[k + 1].wrapping_add((sum >> 64) as u64);

            // Shift one limb (divide by 2^64): t[0] is now zero by choice of m.
            debug_assert_eq!(t[0], 0);
            for j in 0..k + 1 {
                t[j] = t[j + 1];
            }
            t[k + 1] = 0;
        }

        let mut result = BigUint::from_limbs(t);
        if result >= self.n {
            result = &result - &self.n;
        }
        result
    }

    /// Modular exponentiation `base^exp mod n` using a 4-bit fixed window.
    ///
    /// `base` need not be reduced.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % &self.n;
        }
        let base_red = base % &self.n;
        let base_m = self.to_mont(&base_red);

        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one.clone());
        for i in 1..16 {
            let prev: &BigUint = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exp.bit_len();
        let mut acc = self.one.clone();
        // Process the exponent in 4-bit windows from the most significant end.
        let top_window = bits.div_ceil(4) * 4;
        let mut idx = top_window;
        while idx >= 4 {
            idx -= 4;
            // Square 4 times (skip for the leading all-zero prefix of acc==one).
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut w = 0usize;
            for b in (0..4).rev() {
                w = (w << 1) | exp.bit(idx + b) as usize;
            }
            if w != 0 {
                acc = self.mont_mul(&acc, &table[w]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Computes `-n^{-1} mod 2^64` for odd `n` by Newton's iteration.
fn neg_inv_u64(n: u64) -> u64 {
    debug_assert!(n & 1 == 1);
    // x converges to n^{-1} mod 2^64 after 6 doublings of precision.
    let mut x = n; // correct mod 2^3 already for odd n? start with n works mod 2^2
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inv_is_inverse() {
        for n in [1u64, 3, 5, 0xdeadbeef | 1, u64::MAX] {
            let ninv = neg_inv_u64(n);
            assert_eq!(n.wrapping_mul(ninv.wrapping_neg()), 1, "n = {n}");
        }
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&BigUint::from(10u64)).is_none());
        assert!(Montgomery::new(&BigUint::from(9u64)).is_some());
    }

    #[test]
    fn mont_form_roundtrip() {
        let m = BigUint::from(1_000_000_007u64);
        let ctx = Montgomery::new(&m).unwrap();
        for v in [0u64, 1, 2, 999_999_999, 1_000_000_006] {
            let v = BigUint::from(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v);
        }
    }

    #[test]
    fn mul_matches_naive_reduction() {
        let m = BigUint::from_hex_str("c2f869dd0f7a4f5b4d8f0a1b2c3d4e5f").unwrap();
        let m = if m.is_even() { &m + &BigUint::one() } else { m };
        let ctx = Montgomery::new(&m).unwrap();
        let a = BigUint::from_hex_str("123456789abcdef0fedcba9876543210").unwrap() % &m;
        let b = BigUint::from_hex_str("aa55aa55aa55aa55aa55aa55aa55aa55").unwrap() % &m;
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(prod, (&a * &b) % &m);
    }

    #[test]
    fn pow_matches_small_cases() {
        let m = BigUint::from(97u64);
        let ctx = Montgomery::new(&m).unwrap();
        for base in 0u64..20 {
            for exp in 0u64..20 {
                let got = ctx.pow(&BigUint::from(base), &BigUint::from(exp));
                let mut acc = 1u64;
                for _ in 0..exp {
                    acc = acc * base % 97;
                }
                assert_eq!(got.to_u64(), Some(acc), "base={base} exp={exp}");
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = BigUint::from(101u64);
        let ctx = Montgomery::new(&m).unwrap();
        assert!(ctx.pow(&BigUint::from(5u64), &BigUint::zero()).is_one());
    }

    #[test]
    fn pow_unreduced_base() {
        let m = BigUint::from(13u64);
        let ctx = Montgomery::new(&m).unwrap();
        // 100^3 mod 13 = (9)^3 mod 13 = 729 mod 13 = 1
        let r = ctx.pow(&BigUint::from(100u64), &BigUint::from(3u64));
        assert_eq!(r.to_u64(), Some(1));
    }
}
