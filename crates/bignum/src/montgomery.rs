//! Montgomery modular multiplication and exponentiation (CIOS variant).
//!
//! All hot-path modular exponentiations in the reproduction — RSA
//! signing/verification and homomorphic hashing — run through this context,
//! which avoids per-step divisions by keeping operands in Montgomery form.
//!
//! The context is built once per modulus and meant to be **cached by
//! callers** (`pag-crypto` stores one per RSA key and per CRT prime, and
//! one inside `HomomorphicParams`): construction computes `n'` and
//! `R² mod n`, which costs two full divisions — rebuilding it per
//! exponentiation would dominate small workloads. All internal arithmetic
//! runs on fixed-width limb buffers with explicit scratch reuse, so an
//! exponentiation performs no per-step heap allocation.

use crate::BigUint;

/// Precomputed context for modular arithmetic with a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use pag_bignum::{BigUint, Montgomery};
///
/// let m = BigUint::from(1_000_000_007u64);
/// let ctx = Montgomery::new(&m).expect("odd modulus");
/// let r = ctx.pow(&BigUint::from(2u64), &BigUint::from(100u64));
/// assert_eq!(r, BigUint::from(2u64).mod_pow(&BigUint::from(100u64), &m));
/// ```
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus `n` (odd, > 1).
    n: BigUint,
    /// Limb count of `n`.
    k: usize,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`, padded to `k` limbs; converts into
    /// Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` padded to `k` limbs: the Montgomery representation of 1.
    one: Vec<u64>,
}

/// Exponent bit length at which [`Montgomery::pow`] switches from a
/// 4-bit to a 5-bit fixed window (the larger table pays off once the
/// squaring chain is long enough).
const WIDE_WINDOW_BITS: usize = 512;

impl Montgomery {
    /// Builds a context for an odd modulus greater than one.
    ///
    /// Returns `None` when the modulus is even, zero, or one.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_one() || modulus.is_even() {
            return None;
        }
        let k = modulus.limbs.len();
        let n0_inv = neg_inv_u64(modulus.limbs[0]);
        let r = BigUint::one().shl_bits(64 * k);
        let one = pad_to(&(&r % modulus), k);
        let r2 = pad_to(&(&(&r * &r) % modulus), k);
        Some(Montgomery {
            n: modulus.clone(),
            k,
            n0_inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Limb width of the modulus (internal buffers are this long).
    pub fn limb_width(&self) -> usize {
        self.k
    }

    /// Converts a reduced value (`< n`) into Montgomery form.
    pub fn to_mont(&self, a: &BigUint) -> BigUint {
        assert!(a < &self.n, "operand must be reduced");
        let ap = pad_to(a, self.k);
        let mut out = vec![0u64; self.k];
        let mut t = vec![0u64; self.k + 2];
        self.mont_mul_slices(&ap, &self.r2, &mut out, &mut t);
        BigUint::from_limbs(out)
    }

    /// Converts a value out of Montgomery form.
    pub fn from_mont(&self, a: &BigUint) -> BigUint {
        self.mont_mul(a, &BigUint::one())
    }

    /// Montgomery product: `a * b * R^{-1} mod n`.
    ///
    /// Operands must be reduced (`< n`). Allocates its own buffers; the
    /// exponentiation paths below reuse scratch instead.
    pub fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        // Hard assert: pad_to would silently drop high limbs of an
        // unreduced operand and return a wrong product.
        assert!(a < &self.n && b < &self.n, "operands must be reduced");
        let ap = pad_to(a, self.k);
        let bp = pad_to(b, self.k);
        let mut out = vec![0u64; self.k];
        let mut t = vec![0u64; self.k + 2];
        self.mont_mul_slices(&ap, &bp, &mut out, &mut t);
        BigUint::from_limbs(out)
    }

    /// Modular product of two **reduced** values without any division:
    /// two chained Montgomery multiplications (`(a·b·R⁻¹)·R²·R⁻¹ = a·b`).
    ///
    /// Faster than `BigUint::mod_mul` (multiply + full divide) for the
    /// 512-bit-and-up moduli the protocol uses.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        assert!(a < &self.n && b < &self.n, "operands must be reduced");
        let k = self.k;
        let ap = pad_to(a, k);
        let bp = pad_to(b, k);
        let mut ab = vec![0u64; k];
        let mut t = vec![0u64; k + 2];
        self.mont_mul_slices(&ap, &bp, &mut ab, &mut t);
        let mut out = vec![0u64; k];
        self.mont_mul_slices(&ab, &self.r2, &mut out, &mut t);
        BigUint::from_limbs(out)
    }

    /// Fused CIOS Montgomery product over fixed-width limb slices.
    ///
    /// `a`, `b` and `out` are exactly `k` limbs; `t` is at least `k + 1`
    /// limbs of scratch (cleared here). `out` must not alias `a` or `b`.
    ///
    /// Dispatches to a monomorphized kernel for the protocol's hot limb
    /// widths — 4 (the 256-bit CRT primes behind every RSA-512
    /// signature) and 8 (the 512-bit RSA and homomorphic moduli) — where
    /// the unrolled inner loop keeps both carry chains in registers; any
    /// other width takes the generic loop.
    fn mont_mul_slices(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        match self.k {
            2 => self.mont_mul_fixed::<2>(a, b, out),
            4 => self.mont_mul_fixed::<4>(a, b, out),
            8 => self.mont_mul_fixed::<8>(a, b, out),
            _ => self.mont_mul_generic(a, b, out, t),
        }
    }

    /// Monomorphized CIOS kernel: identical algorithm to
    /// [`Self::mont_mul_generic`], but with the limb count a compile-time
    /// constant the whole double carry chain unrolls flat.
    fn mont_mul_fixed<const K: usize>(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let a: &[u64; K] = a[..K].try_into().expect("operand width");
        let b: &[u64; K] = b[..K].try_into().expect("operand width");
        let n: &[u64; K] = self.n.limbs[..K].try_into().expect("modulus width");
        let mut t = [0u64; K];
        let mut t_hi = 0u64;

        for &ai in a {
            // Column 0 fixes the reduction multiplier m for this row.
            let p = t[0] as u128 + ai as u128 * b[0] as u128;
            let m = (p as u64).wrapping_mul(self.n0_inv);
            let q = (p as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(q as u64, 0);
            let mut carry_mul = p >> 64;
            let mut carry_red = q >> 64;
            for j in 1..K {
                let p = t[j] as u128 + ai as u128 * b[j] as u128 + carry_mul;
                carry_mul = p >> 64;
                let q = (p as u64) as u128 + m as u128 * n[j] as u128 + carry_red;
                carry_red = q >> 64;
                t[j - 1] = q as u64;
            }
            let s = t_hi as u128 + carry_mul + carry_red;
            t[K - 1] = s as u64;
            t_hi = (s >> 64) as u64;
        }

        // Accumulated value is < 2n: subtract n once if needed.
        if t_hi != 0 || !slice_lt(&t, n) {
            let mut borrow = 0i128;
            for j in 0..K {
                let diff = t[j] as i128 - n[j] as i128 + borrow;
                out[j] = diff as u64;
                borrow = diff >> 64;
            }
        } else {
            out[..K].copy_from_slice(&t);
        }
    }

    /// Generic CIOS loop for moduli whose limb count has no dedicated
    /// kernel.
    ///
    /// The multiplication by `a_i` and the reduction by `m·n` run in one
    /// pass per outer limb (two separate carry chains), with the one-limb
    /// shift folded into the write index — each inner iteration touches
    /// `t[j]` once instead of three times.
    fn mont_mul_generic(&self, a: &[u64], b: &[u64], out: &mut [u64], t: &mut [u64]) {
        let k = self.k;
        let a = &a[..k];
        let b = &b[..k];
        let n = &self.n.limbs[..k];
        let t = &mut t[..k + 1];
        let out = &mut out[..k];
        t.fill(0);

        for &ai in a {
            // Column 0 fixes the reduction multiplier m for this row.
            let p = t[0] as u128 + ai as u128 * b[0] as u128;
            let m = (p as u64).wrapping_mul(self.n0_inv);
            let q = (p as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(q as u64, 0);
            let mut carry_mul = p >> 64; // carry of the a_i * b chain
            let mut carry_red = q >> 64; // carry of the m * n chain
            for j in 1..k {
                let p = t[j] as u128 + ai as u128 * b[j] as u128 + carry_mul;
                carry_mul = p >> 64;
                let q = (p as u64) as u128 + m as u128 * n[j] as u128 + carry_red;
                carry_red = q >> 64;
                t[j - 1] = q as u64;
            }
            let s = t[k] as u128 + carry_mul + carry_red;
            t[k - 1] = s as u64;
            t[k] = (s >> 64) as u64;
        }

        // Accumulated value is < 2n: subtract n once if needed.
        if t[k] != 0 || !slice_lt(&t[..k], n) {
            let mut borrow = 0i128;
            for j in 0..k {
                let diff = t[j] as i128 - n[j] as i128 + borrow;
                out[j] = diff as u64;
                borrow = diff >> 64;
            }
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// Modular exponentiation `base^exp mod n` using a fixed window of 4
    /// or 5 bits (chosen by exponent length).
    ///
    /// `base` need not be reduced. All intermediate state lives in a
    /// handful of buffers allocated once per call.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one() % &self.n;
        }
        let base_red = base % &self.n;
        if exp.is_one() {
            return base_red;
        }
        let k = self.k;
        let bits = exp.bit_len();
        let w = if bits >= WIDE_WINDOW_BITS { 5 } else { 4 };
        let rows = 1usize << w;

        let mut t = vec![0u64; k + 2];
        let mut tmp = vec![0u64; k];

        // table[i] = base^i in Montgomery form, as rows of a flat buffer.
        let mut table = vec![0u64; rows * k];
        table[..k].copy_from_slice(&self.one);
        let base_p = pad_to(&base_red, k);
        {
            let (row0, row1) = table.split_at_mut(k);
            let _ = row0;
            self.mont_mul_slices(&base_p, &self.r2, &mut row1[..k], &mut t);
        }
        for i in 2..rows {
            let (prev, cur) = table.split_at_mut(i * k);
            let base_m = &prev[k..2 * k];
            let row = &prev[(i - 1) * k..];
            // Split again to appease aliasing: multiply prev row by base_m.
            self.mont_mul_slices(row, base_m, &mut cur[..k], &mut t);
        }

        // Seed the accumulator with the top window (skips w leading squares).
        let windows = bits.div_ceil(w);
        let top = window_value(exp, (windows - 1) * w, w);
        debug_assert!(top != 0, "top window contains the most significant bit");
        let mut acc = table[top * k..(top + 1) * k].to_vec();

        for wi in (0..windows - 1).rev() {
            for _ in 0..w {
                self.mont_mul_slices(&acc, &acc, &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let val = window_value(exp, wi * w, w);
            if val != 0 {
                self.mont_mul_slices(&acc, &table[val * k..(val + 1) * k], &mut tmp, &mut t);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }

        self.redc_out(&acc, &mut tmp, &mut t)
    }

    /// Modular exponentiation with a machine-word exponent.
    ///
    /// Plain square-and-multiply: for sparse exponents like the RSA
    /// verification exponent `e = 65537` this is 16 squarings plus one
    /// multiplication — cheaper than windowing (no table build).
    pub fn pow_u64(&self, base: &BigUint, exp: u64) -> BigUint {
        if exp == 0 {
            return BigUint::one() % &self.n;
        }
        let base_red = base % &self.n;
        if exp == 1 {
            return base_red;
        }
        let k = self.k;
        let mut t = vec![0u64; k + 2];
        let mut tmp = vec![0u64; k];
        let base_p = pad_to(&base_red, k);
        let mut base_m = vec![0u64; k];
        self.mont_mul_slices(&base_p, &self.r2, &mut base_m, &mut t);

        let acc = self.pow_mont_u64(&base_m, exp, &mut tmp, &mut t);
        self.redc_out(&acc, &mut tmp, &mut t)
    }

    /// `base_m^exp` for a Montgomery-form base and machine-word exponent
    /// `>= 1`, MSB-first square-and-multiply over the shared scratch.
    fn pow_mont_u64(&self, base_m: &[u64], exp: u64, tmp: &mut Vec<u64>, t: &mut [u64]) -> Vec<u64> {
        debug_assert!(exp >= 1);
        let mut acc = base_m.to_vec();
        let bits = 64 - exp.leading_zeros();
        for i in (0..bits - 1).rev() {
            self.mont_mul_slices(&acc, &acc, tmp, t);
            std::mem::swap(&mut acc, tmp);
            if (exp >> i) & 1 == 1 {
                self.mont_mul_slices(&acc, base_m, tmp, t);
                std::mem::swap(&mut acc, tmp);
            }
        }
        acc
    }

    /// Converts a Montgomery-form buffer out of the domain (multiply by
    /// raw 1). Leaves `tmp` emptied.
    fn redc_out(&self, acc: &[u64], tmp: &mut Vec<u64>, t: &mut [u64]) -> BigUint {
        let mut one_raw = vec![0u64; self.k];
        one_raw[0] = 1;
        self.mont_mul_slices(acc, &one_raw, tmp, t);
        BigUint::from_limbs(std::mem::take(tmp))
    }
}

/// Division-free running product modulo a cached [`Montgomery`] context.
///
/// The protocol's multiset products (`Π residue_i^{count_i} mod M`) used
/// to perform one full multiply-and-divide per factor. This accumulator
/// multiplies **raw** (unconverted) factors straight into a
/// Montgomery-form running product — one word-width multiplication per
/// factor, no conversion, no division — while counting the `R⁻¹` each
/// raw factor drags in. [`MontAccumulator::finish`] repays the whole
/// debt at once with a single `R^d mod n` exponentiation (logarithmic
/// in the factor count).
///
/// # Examples
///
/// ```
/// use pag_bignum::{BigUint, Montgomery, MontAccumulator};
///
/// let m = BigUint::from(1_000_003u64);
/// let ctx = Montgomery::new(&m).unwrap();
/// let mut acc = MontAccumulator::new(&ctx);
/// acc.mul(&BigUint::from(123u64));
/// acc.mul_pow(&BigUint::from(45u64), 3);
/// let expected = BigUint::from(123u64 * 45 * 45 * 45) % &m;
/// assert_eq!(acc.finish(), expected);
/// ```
pub struct MontAccumulator<'m> {
    ctx: &'m Montgomery,
    /// Running product: equals `P · R^(1 - debt)` for true product `P`.
    acc: Vec<u64>,
    /// Number of raw factors multiplied in so far (the `R⁻¹` debt).
    debt: u64,
    /// CIOS scratch (`k + 2` limbs).
    t: Vec<u64>,
    /// Output swap buffer (`k` limbs).
    tmp: Vec<u64>,
}

/// Count above which [`MontAccumulator::mul_pow`] converts the value to
/// Montgomery form and square-and-multiplies instead of looping raw
/// multiplications.
const POW_LOOP_LIMIT: u32 = 16;

impl<'m> MontAccumulator<'m> {
    /// Starts a product at one.
    pub fn new(ctx: &'m Montgomery) -> Self {
        MontAccumulator {
            acc: ctx.one.clone(),
            debt: 0,
            t: vec![0u64; ctx.k + 2],
            tmp: vec![0u64; ctx.k],
            ctx,
        }
    }

    /// Multiplies a **reduced** value (`< n`) into the product.
    pub fn mul(&mut self, value: &BigUint) {
        assert!(value < &self.ctx.n, "operand must be reduced");
        let vp = pad_to(value, self.ctx.k);
        self.mul_raw(&vp);
    }

    /// Multiplies `value^count` into the product (`value < n`).
    ///
    /// Small counts (the protocol's duplicate-reception multiplicities)
    /// loop raw multiplications; large counts convert once and
    /// square-and-multiply in Montgomery form.
    pub fn mul_pow(&mut self, value: &BigUint, count: u32) {
        if count == 0 {
            return;
        }
        assert!(value < &self.ctx.n, "operand must be reduced");
        let vp = pad_to(value, self.ctx.k);
        if count <= POW_LOOP_LIMIT {
            for _ in 0..count {
                self.mul_raw(&vp);
            }
            return;
        }
        // vm = value · R (proper Montgomery form): multiplying by it
        // leaves the debt unchanged, so the power can be built in-domain.
        let mut vm = vec![0u64; self.ctx.k];
        self.ctx.mont_mul_slices(&vp, &self.ctx.r2, &mut vm, &mut self.t);
        let pw = self
            .ctx
            .pow_mont_u64(&vm, count as u64, &mut self.tmp, &mut self.t);
        // pw = value^count · R: one more mont_mul cancels the extra R.
        self.ctx.mont_mul_slices(&self.acc, &pw, &mut self.tmp, &mut self.t);
        std::mem::swap(&mut self.acc, &mut self.tmp);
    }

    /// The accumulated product, out of Montgomery form.
    pub fn finish(mut self) -> BigUint {
        // acc = P · R^(1 - debt); multiplying by R^debt (raw) under one
        // more Montgomery reduction yields P exactly.
        let r_raw = BigUint::from_limbs(self.ctx.one.clone());
        let correction = self.ctx.pow(&r_raw, &BigUint::from(self.debt));
        let cp = pad_to(&correction, self.ctx.k);
        self.ctx
            .mont_mul_slices(&self.acc, &cp, &mut self.tmp, &mut self.t);
        BigUint::from_limbs(self.tmp)
    }

    /// Multiplies a raw (non-Montgomery) padded value in, incurring one
    /// `R⁻¹` of debt.
    fn mul_raw(&mut self, vp: &[u64]) {
        self.ctx.mont_mul_slices(&self.acc, vp, &mut self.tmp, &mut self.t);
        std::mem::swap(&mut self.acc, &mut self.tmp);
        self.debt += 1;
    }
}

/// Little-endian limbs of `v` padded with zeros to exactly `k` limbs.
fn pad_to(v: &BigUint, k: usize) -> Vec<u64> {
    debug_assert!(v.limbs.len() <= k);
    let mut out = v.limbs.clone();
    out.resize(k, 0);
    out
}

/// `a < b` over equal-length little-endian limb slices.
fn slice_lt(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

/// Bits `[lo, lo + w)` of `exp` as a window value.
fn window_value(exp: &BigUint, lo: usize, w: usize) -> usize {
    let mut val = 0usize;
    for b in (0..w).rev() {
        val = (val << 1) | exp.bit(lo + b) as usize;
    }
    val
}

/// Computes `-n^{-1} mod 2^64` for odd `n` by Newton's iteration.
fn neg_inv_u64(n: u64) -> u64 {
    debug_assert!(n & 1 == 1);
    // x converges to n^{-1} mod 2^64 after 6 doublings of precision.
    let mut x = n; // correct mod 2^3 already for odd n? start with n works mod 2^2
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inv_is_inverse() {
        for n in [1u64, 3, 5, 0xdeadbeef | 1, u64::MAX] {
            let ninv = neg_inv_u64(n);
            assert_eq!(n.wrapping_mul(ninv.wrapping_neg()), 1, "n = {n}");
        }
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(Montgomery::new(&BigUint::zero()).is_none());
        assert!(Montgomery::new(&BigUint::one()).is_none());
        assert!(Montgomery::new(&BigUint::from(10u64)).is_none());
        assert!(Montgomery::new(&BigUint::from(9u64)).is_some());
    }

    #[test]
    fn mont_form_roundtrip() {
        let m = BigUint::from(1_000_000_007u64);
        let ctx = Montgomery::new(&m).unwrap();
        for v in [0u64, 1, 2, 999_999_999, 1_000_000_006] {
            let v = BigUint::from(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v);
        }
    }

    #[test]
    fn mul_matches_naive_reduction() {
        let m = BigUint::from_hex_str("c2f869dd0f7a4f5b4d8f0a1b2c3d4e5f").unwrap();
        let m = if m.is_even() { &m + &BigUint::one() } else { m };
        let ctx = Montgomery::new(&m).unwrap();
        let a = BigUint::from_hex_str("123456789abcdef0fedcba9876543210").unwrap() % &m;
        let b = BigUint::from_hex_str("aa55aa55aa55aa55aa55aa55aa55aa55").unwrap() % &m;
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(prod, (&a * &b) % &m);
    }

    #[test]
    fn mul_mod_matches_divide_reduce() {
        let m = BigUint::from_hex_str("ffffffffffffffffffffffffffffff61").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let a = BigUint::from_hex_str("123456789abcdef00000000deadbeef1").unwrap() % &m;
        let b = BigUint::from_hex_str("fedcba9876543210ffffffff00000001").unwrap() % &m;
        assert_eq!(ctx.mul_mod(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn pow_matches_small_cases() {
        let m = BigUint::from(97u64);
        let ctx = Montgomery::new(&m).unwrap();
        for base in 0u64..20 {
            for exp in 0u64..20 {
                let got = ctx.pow(&BigUint::from(base), &BigUint::from(exp));
                let mut acc = 1u64;
                for _ in 0..exp {
                    acc = acc * base % 97;
                }
                assert_eq!(got.to_u64(), Some(acc), "base={base} exp={exp}");
                let via_u64 = ctx.pow_u64(&BigUint::from(base), exp);
                assert_eq!(via_u64.to_u64(), Some(acc), "pow_u64 base={base} exp={exp}");
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        let m = BigUint::from(101u64);
        let ctx = Montgomery::new(&m).unwrap();
        assert!(ctx.pow(&BigUint::from(5u64), &BigUint::zero()).is_one());
        assert!(ctx.pow_u64(&BigUint::from(5u64), 0).is_one());
    }

    #[test]
    fn pow_unreduced_base() {
        let m = BigUint::from(13u64);
        let ctx = Montgomery::new(&m).unwrap();
        // 100^3 mod 13 = (9)^3 mod 13 = 729 mod 13 = 1
        let r = ctx.pow(&BigUint::from(100u64), &BigUint::from(3u64));
        assert_eq!(r.to_u64(), Some(1));
        assert_eq!(ctx.pow_u64(&BigUint::from(100u64), 3).to_u64(), Some(1));
    }

    #[test]
    fn pow_wide_window_path() {
        // Exponent above WIDE_WINDOW_BITS exercises the 5-bit window.
        let m = BigUint::from_hex_str("f000000000000000000000000000000d").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let mut exp = BigUint::one().shl_bits(WIDE_WINDOW_BITS + 13);
        exp = &exp + &BigUint::from(0x1234_5678_9abc_def1u64);
        let base = BigUint::from(0xdead_beefu64);
        assert_eq!(ctx.pow(&base, &exp), base.mod_pow(&exp, &m));
    }

    #[test]
    fn pow_u64_verification_exponent() {
        let m = BigUint::from_hex_str("c000000000000000000000000000004f").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let base = BigUint::from(0x1234_5678u64);
        let e = 65_537u64;
        assert_eq!(ctx.pow_u64(&base, e), base.mod_pow(&BigUint::from(e), &m));
    }

    #[test]
    fn accumulator_matches_mod_mul_chain() {
        let m = BigUint::from_hex_str("deadbeefdeadbeefdeadbeefdeadbeb1").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let values: Vec<BigUint> = (1u64..20)
            .map(|i| BigUint::from(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % &m)
            .collect();
        let mut acc = MontAccumulator::new(&ctx);
        let mut expected = BigUint::one();
        for (i, v) in values.iter().enumerate() {
            let count = (i % 4) as u32; // exercise 0, 1 and >1 counts
            acc.mul_pow(v, count);
            for _ in 0..count {
                expected = expected.mod_mul(v, &m);
            }
        }
        assert_eq!(acc.finish(), expected);
    }

    #[test]
    fn fixed_kernels_match_generic_at_every_width() {
        // Build odd moduli of 1..10 limbs so the dispatch covers the
        // monomorphized widths (2, 4, 8) and the generic fallback, and
        // pin mul/pow against the division-based naive path.
        for limbs in 1..10usize {
            let mut m = BigUint::one().shl_bits(64 * limbs) - BigUint::from(0x2f1du64);
            if m.is_even() {
                m = &m + &BigUint::one();
            }
            let ctx = Montgomery::new(&m).unwrap();
            assert_eq!(ctx.limb_width(), limbs);
            let a = BigUint::from(0x9E37_79B9_7F4A_7C15u64).mod_pow(&BigUint::from(3u64), &m);
            let b = BigUint::from(0xDEAD_BEEF_CAFE_F00Du64).mod_pow(&BigUint::from(5u64), &m);
            assert_eq!(ctx.mul_mod(&a, &b), a.mod_mul(&b, &m), "{limbs} limbs");
            let e = BigUint::from(0x1_0001u64);
            assert_eq!(ctx.pow(&a, &e), a.mod_pow(&e, &m), "{limbs} limbs");
            assert_eq!(ctx.pow_u64(&a, 65_537), a.mod_pow(&e, &m), "{limbs} limbs");
        }
    }

    #[test]
    fn accumulator_empty_is_one() {
        let ctx = Montgomery::new(&BigUint::from(101u64)).unwrap();
        assert!(MontAccumulator::new(&ctx).finish().is_one());
    }
}
