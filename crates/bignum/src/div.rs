//! Division and remainder via Knuth's Algorithm D (TAOCP vol. 2, 4.3.1).

use std::ops::{Div, Rem};

use crate::BigUint;

impl BigUint {
    /// Computes quotient and remainder in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_limb(divisor.limbs[0]);
        }
        knuth_d(self, divisor)
    }

    /// Divides by a single limb.
    fn div_rem_limb(&self, d: u64) -> (BigUint, BigUint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (BigUint::from_limbs(q), BigUint::from(rem))
    }

    /// Computes `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_ref(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Computes `self / divisor` (floor).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_ref(&self, divisor: &BigUint) -> BigUint {
        self.div_rem(divisor).0
    }
}

/// Knuth Algorithm D for multi-limb divisors.
fn knuth_d(num: &BigUint, den: &BigUint) -> (BigUint, BigUint) {
    let n = den.limbs.len();
    let m = num.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let s = den.limbs[n - 1].leading_zeros() as usize;
    let v = shl_small(&den.limbs, s, false);
    debug_assert_eq!(v.len(), n);
    let mut u = shl_small(&num.limbs, s, true);
    debug_assert_eq!(u.len(), num.limbs.len() + 1);

    let mut q = vec![0u64; m + 1];
    let v_top = v[n - 1] as u128;
    let v_next = v[n - 2] as u128;

    // D2-D7: main loop over quotient digits.
    for j in (0..=m).rev() {
        // D3: estimate the quotient digit.
        let u_hi = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = u_hi / v_top;
        let mut rhat = u_hi % v_top;
        loop {
            if qhat >> 64 != 0 || qhat * v_next > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 == 0 {
                    continue;
                }
            }
            break;
        }

        // D4: multiply and subtract.
        let mut carry: u128 = 0;
        let mut borrow: i128 = 0;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
            u[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = u[j + n] as i128 - carry as i128 + borrow;
        u[j + n] = t as u64;

        // D5-D6: the estimate was one too large (probability ~2/2^64); add back.
        if t < 0 {
            qhat -= 1;
            let mut c: u128 = 0;
            for i in 0..n {
                let sum = u[j + i] as u128 + v[i] as u128 + c;
                u[j + i] = sum as u64;
                c = sum >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(u[..n].to_vec()).shr_bits(s);
    (BigUint::from_limbs(q), rem)
}

/// Shifts limbs left by `s < 64` bits; `grow` appends the carry limb even if
/// zero (Algorithm D wants the dividend one limb longer).
fn shl_small(limbs: &[u64], s: usize, grow: bool) -> Vec<u64> {
    let mut out = Vec::with_capacity(limbs.len() + 1);
    if s == 0 {
        out.extend_from_slice(limbs);
        if grow {
            out.push(0);
        }
        return out;
    }
    let mut carry = 0u64;
    for &limb in limbs {
        out.push((limb << s) | carry);
        carry = limb >> (64 - s);
    }
    if grow || carry != 0 {
        out.push(carry);
    }
    out
}

macro_rules! forward_divrem {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                self.$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$impl_fn(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$impl_fn(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$impl_fn(&rhs)
            }
        }
    };
}

forward_divrem!(Div, div, div_ref);
forward_divrem!(Rem, rem, rem_ref);

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn small_division() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(7u64);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_u64(), Some(14));
        assert_eq!(r.to_u64(), Some(2));
    }

    #[test]
    fn divide_by_larger_gives_zero_quotient() {
        let a = BigUint::from(3u64);
        let b = BigUint::from(10u64);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn multi_limb_roundtrip() {
        let a = BigUint::from_hex_str(
            "f123456789abcdef0fedcba987654321deadbeefcafebabe0011223344556677",
        )
        .unwrap();
        let b = BigUint::from_hex_str("ffddbb9977553311aabbccdd").unwrap();
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from_hex_str("1000000000000000000000001").unwrap();
        let q_expected = BigUint::from_hex_str("abcdef0123456789").unwrap();
        let a = &b * &q_expected;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q_expected);
        assert!(r.is_zero());
    }

    #[test]
    fn knuth_add_back_case() {
        // Classic add-back trigger: dividend crafted so qhat overshoots.
        // u = (2^128 - 1) * 2^64, v = 2^128 - 2^64 - 1 exercises correction.
        let u = BigUint::from_limbs(vec![0, u64::MAX, u64::MAX]);
        let v = BigUint::from_limbs(vec![u64::MAX, u64::MAX - 1]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn remainder_only() {
        let a = BigUint::from(1000u64);
        let m = BigUint::from(37u64);
        assert_eq!((&a % &m).to_u64(), Some(1000 % 37));
        assert_eq!((&a / &m).to_u64(), Some(1000 / 37));
    }

    #[test]
    fn division_by_power_of_two_matches_shift() {
        let a = BigUint::from_hex_str("123456789abcdef0123456789abcdef").unwrap();
        let d = BigUint::one().shl_bits(65);
        assert_eq!(&a / &d, a.shr_bits(65));
    }
}
