//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold. Both paths are exercised against each other by property tests.

use std::ops::{Mul, MulAssign};

use crate::BigUint;

/// Operand size (in limbs) above which Karatsuba splitting is used.
const KARATSUBA_THRESHOLD: usize = 24;

impl BigUint {
    /// Multiplies two values.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(mul_slices(&self.limbs, &other.limbs))
    }

    /// Squares the value (currently delegates to multiplication).
    pub fn square(&self) -> BigUint {
        self.mul_ref(self)
    }
}

/// Multiplies two limb slices, choosing the algorithm by size.
fn mul_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) >= KARATSUBA_THRESHOLD {
        karatsuba(a, b)
    } else {
        schoolbook(a, b)
    }
}

/// O(n*m) schoolbook multiplication.
fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba recursion: splits at half the larger operand.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let m = a.len().max(b.len()) / 2;
    let (a0, a1) = split(a, m);
    let (b0, b1) = split(b, m);

    let z0 = mul_slices(a0, b0);
    let z2 = if a1.is_empty() || b1.is_empty() {
        Vec::new()
    } else {
        mul_slices(a1, b1)
    };

    // z1 = (a0 + a1)(b0 + b1) - z0 - z2
    let a_sum = add_slices(a0, a1);
    let b_sum = add_slices(b0, b1);
    let mut z1 = mul_slices(&a_sum, &b_sum);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    let mut out = vec![0u64; a.len() + b.len() + 1];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, m);
    add_at(&mut out, &z2, 2 * m);
    out
}

fn split(s: &[u64], m: usize) -> (&[u64], &[u64]) {
    if s.len() <= m {
        (s, &[])
    } else {
        (&s[..m], &s[m..])
    }
}

fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(longer.len() + 1);
    let mut carry = 0u128;
    for (i, &limb) in longer.iter().enumerate() {
        let sum = limb as u128 + *shorter.get(i).unwrap_or(&0) as u128 + carry;
        out.push(sum as u64);
        carry = sum >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// `acc -= sub`; requires `acc >= sub` numerically (guaranteed by Karatsuba).
fn sub_in_place(acc: &mut [u64], sub: &[u64]) {
    let mut borrow = 0i128;
    for (i, limb) in acc.iter_mut().enumerate() {
        let diff = *limb as i128 - *sub.get(i).unwrap_or(&0) as i128 + borrow;
        *limb = diff as u64;
        borrow = diff >> 64;
    }
    debug_assert_eq!(borrow, 0, "karatsuba middle term must be non-negative");
}

/// `acc[offset..] += add`, propagating the carry; `acc` must be long enough.
fn add_at(acc: &mut [u64], add: &[u64], offset: usize) {
    let mut carry = 0u128;
    let mut i = 0;
    while i < add.len() || carry != 0 {
        let idx = offset + i;
        let sum = acc[idx] as u128 + *add.get(i).unwrap_or(&0) as u128 + carry;
        acc[idx] = sum as u64;
        carry = sum >> 64;
        i += 1;
    }
}

macro_rules! forward_mul {
    ($lhs:ty, $rhs:ty) => {
        impl Mul<$rhs> for $lhs {
            type Output = BigUint;
            fn mul(self, rhs: $rhs) -> BigUint {
                BigUint::mul_ref(&self, &rhs)
            }
        }
    };
}

forward_mul!(&BigUint, &BigUint);
forward_mul!(BigUint, BigUint);
forward_mul!(BigUint, &BigUint);
forward_mul!(&BigUint, BigUint);

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn mul_small() {
        let a = BigUint::from(7u64);
        let b = BigUint::from(6u64);
        assert_eq!((&a * &b).to_u64(), Some(42));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = BigUint::from(0xabcdefu64);
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn mul_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let sq = &a * &a;
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = BigUint::from_limbs(vec![1, u64::MAX - 1]);
        assert_eq!(sq, expected);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Operands above the threshold force the Karatsuba path.
        let n = KARATSUBA_THRESHOLD + 9;
        let a: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i + 7).wrapping_mul(0xC2B2AE3D27D4EB4F)).collect();
        assert_eq!(karatsuba(&a, &b), {
            let mut s = schoolbook(&a, &b);
            s.push(0); // karatsuba allocates one extra limb
            s
        });
    }

    #[test]
    fn karatsuba_unbalanced_operands() {
        let a: Vec<u64> = (1..60u64).collect();
        let b: Vec<u64> = (1..30u64).collect();
        let k = BigUint::from_limbs(karatsuba(&a, &b));
        let s = BigUint::from_limbs(schoolbook(&a, &b));
        assert_eq!(k, s);
    }

    #[test]
    fn square_equals_self_mul() {
        let v = BigUint::from_hex_str("ffeeddccbbaa99887766554433221100").unwrap();
        assert_eq!(v.square(), &v * &v);
    }

    #[test]
    fn distributive_law() {
        let a = BigUint::from(123456789u64);
        let b = BigUint::from(987654321u64);
        let c = BigUint::from(555555555u64);
        assert_eq!(&a * (&b + &c), &(&a * &b) + &(&a * &c));
    }
}
