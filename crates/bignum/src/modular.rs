//! Modular arithmetic: `mod_add`, `mod_sub`, `mod_mul`, `mod_pow`,
//! `mod_inv`, `gcd` and the extended Euclidean algorithm.
//!
//! `mod_pow` automatically uses Montgomery multiplication when the modulus is
//! odd (always the case for RSA and the homomorphic hash) and falls back to
//! divide-and-reduce square-and-multiply otherwise.

use crate::montgomery::Montgomery;
use crate::BigUint;

impl BigUint {
    /// `(self + other) mod m`. Operands need not be reduced.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        (self + other) % m
    }

    /// `(self - other) mod m`, wrapping around the modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_sub(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let a = self % m;
        let b = other % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// `(self * other) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        (self * other) % m
    }

    /// `self^exponent mod m`.
    ///
    /// This is the core operation of the paper's homomorphic hash
    /// `H(u)_(p,M) = u^p mod M`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero. `x^0 mod 1` is 0 like every residue mod 1.
    pub fn mod_pow(&self, exponent: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus in mod_pow");
        if m.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        if m.is_odd() {
            let ctx = Montgomery::new(m).expect("odd modulus accepted");
            return ctx.pow(self, exponent);
        }
        self.mod_pow_naive(exponent, m)
    }

    /// `self^exponent mod m` by plain square-and-multiply with a full
    /// divide-and-reduce per step.
    ///
    /// Works for any non-zero modulus (odd or even). This is the
    /// reference implementation the windowed Montgomery path is property
    /// tested against, and the baseline the crypto benchmarks compare to;
    /// [`BigUint::mod_pow`] only uses it when the modulus is even.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow_naive(&self, exponent: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "zero modulus in mod_pow_naive");
        if m.is_one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        let mut base = self % m;
        let mut result = BigUint::one();
        for i in 0..exponent.bit_len() {
            if exponent.bit(i) {
                result = result.mod_mul(&base, m);
            }
            base = base.mod_mul(&base, m);
        }
        result
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: returns `x` with `self * x ≡ 1 (mod m)`, or `None`
    /// when `gcd(self, m) != 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_inv(&self, m: &BigUint) -> Option<BigUint> {
        assert!(!m.is_zero(), "zero modulus in mod_inv");
        if m.is_one() {
            return Some(BigUint::zero());
        }
        let (g, x) = ext_gcd_coeff(&(self % m), m);
        if g.is_one() {
            Some(x)
        } else {
            None
        }
    }
}

/// Extended Euclid returning `(gcd, x mod m)` with `a*x ≡ gcd (mod m)`.
///
/// Coefficients are tracked as sign/magnitude pairs to stay in unsigned
/// arithmetic.
fn ext_gcd_coeff(a: &BigUint, m: &BigUint) -> (BigUint, BigUint) {
    // Invariants: old_r = a*old_s (mod m), r = a*s (mod m)
    let mut old_r = a.clone();
    let mut r = m.clone();
    let mut old_s = Signed::pos(BigUint::one());
    let mut s = Signed::pos(BigUint::zero());

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        let qs = s.mul_mag(&q);
        let new_s = old_s.sub(&qs);
        old_s = std::mem::replace(&mut s, new_s);
    }
    (old_r, old_s.reduce_mod(m))
}

/// Minimal sign/magnitude integer for the extended Euclid bookkeeping.
#[derive(Clone, Debug)]
struct Signed {
    neg: bool,
    mag: BigUint,
}

impl Signed {
    fn pos(mag: BigUint) -> Self {
        Signed { neg: false, mag }
    }

    fn mul_mag(&self, k: &BigUint) -> Signed {
        Signed {
            neg: self.neg && !k.is_zero(),
            mag: &self.mag * k,
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            (false, true) => Signed::pos(&self.mag + &other.mag),
            (true, false) => Signed {
                neg: !(&self.mag + &other.mag).is_zero(),
                mag: &self.mag + &other.mag,
            },
            (sn, _) => {
                // Same sign: subtract magnitudes.
                if self.mag >= other.mag {
                    let mag = &self.mag - &other.mag;
                    Signed {
                        neg: sn && !mag.is_zero(),
                        mag,
                    }
                } else {
                    let mag = &other.mag - &self.mag;
                    Signed {
                        neg: !sn && !mag.is_zero(),
                        mag,
                    }
                }
            }
        }
    }

    /// Canonical representative in `[0, m)`.
    fn reduce_mod(&self, m: &BigUint) -> BigUint {
        let r = &self.mag % m;
        if self.neg && !r.is_zero() {
            m - &r
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn mod_add_wraps() {
        assert_eq!(b(7).mod_add(&b(8), &b(10)).to_u64(), Some(5));
    }

    #[test]
    fn mod_sub_wraps_below_zero() {
        assert_eq!(b(3).mod_sub(&b(8), &b(10)).to_u64(), Some(5));
        assert_eq!(b(8).mod_sub(&b(3), &b(10)).to_u64(), Some(5));
    }

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(b(2).mod_pow(&b(10), &b(1000)).to_u64(), Some(24));
        assert_eq!(b(3).mod_pow(&b(0), &b(7)).to_u64(), Some(1));
        assert_eq!(b(0).mod_pow(&b(5), &b(7)).to_u64(), Some(0));
        assert!(b(5).mod_pow(&b(5), &b(1)).is_zero());
    }

    #[test]
    fn mod_pow_even_modulus() {
        // 3^7 mod 100 = 2187 mod 100 = 87 (even modulus path)
        assert_eq!(b(3).mod_pow(&b(7), &b(100)).to_u64(), Some(87));
    }

    #[test]
    fn mod_pow_fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p and gcd(a, p) = 1
        let p = b(1_000_000_007);
        for a in [2u64, 3, 65537, 999_999_999] {
            assert!(b(a).mod_pow(&(&p - &BigUint::one()), &p).is_one());
        }
    }

    #[test]
    fn mod_pow_large_operands() {
        // 2^255 mod (2^255 - 19): 2^255 = (2^255 - 19) + 19 => 19.
        let m = BigUint::one().shl_bits(255) - b(19);
        let r = b(2).mod_pow(&b(255), &m);
        assert_eq!(r.to_u64(), Some(19));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(12).gcd(&b(18)).to_u64(), Some(6));
        assert_eq!(b(17).gcd(&b(13)).to_u64(), Some(1));
        assert_eq!(b(0).gcd(&b(5)).to_u64(), Some(5));
        assert_eq!(b(5).gcd(&b(0)).to_u64(), Some(5));
    }

    #[test]
    fn mod_inv_roundtrip() {
        let m = b(1_000_000_007);
        for a in [2u64, 3, 999, 123456789] {
            let inv = b(a).mod_inv(&m).expect("prime modulus => invertible");
            assert!(b(a).mod_mul(&inv, &m).is_one(), "a = {a}");
        }
    }

    #[test]
    fn mod_inv_not_coprime() {
        assert!(b(6).mod_inv(&b(9)).is_none());
        assert!(b(0).mod_inv(&b(7)).is_none());
    }

    #[test]
    fn mod_inv_of_one() {
        assert!(b(1).mod_inv(&b(97)).unwrap().is_one());
    }

    #[test]
    fn mod_inv_large() {
        let m = BigUint::from_hex_str("fffffffffffffffffffffffffffffffeffffffffffffffff")
            .unwrap(); // NIST P-192 prime
        let a = BigUint::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        let inv = a.mod_inv(&m).unwrap();
        assert!(a.mod_mul(&inv, &m).is_one());
    }

    #[test]
    fn rsa_style_inverse() {
        // Tiny RSA: p=61, q=53, n=3233, phi=3120, e=17 => d=2753.
        let e = b(17);
        let phi = b(3120);
        let d = e.mod_inv(&phi).unwrap();
        assert_eq!(d.to_u64(), Some(2753));
    }
}
