//! Virtual time: instants and durations in microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from microseconds since start.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since earlier instant"),
        )
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1000)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

}

/// Scales the duration by an integer factor.
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0 + o.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(o.0).expect("duration underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        assert_eq!(t.duration_since(SimTime::ZERO).as_secs_f64(), 2.0);
        assert_eq!(
            (SimDuration::from_secs(3) - SimDuration::from_secs(1)).as_secs_f64(),
            2.0
        );
        assert_eq!((SimDuration::from_millis(10) * 5).as_micros(), 50_000);
    }

    #[test]
    #[should_panic(expected = "earlier instant")]
    fn duration_since_panics_backwards() {
        SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(SimTime::from_micros(1_234_000).to_string(), "1.234s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }
}
