//! Per-node traffic accounting and simulation reports.
//!
//! The paper's headline metric is *bandwidth consumption per node* (Figs.
//! 7–9); the simulator counts every byte sent and received, broken down by
//! protocol-defined traffic classes so experiments can attribute overhead
//! (updates vs buffermaps vs monitoring control traffic).

use std::collections::BTreeMap;

use pag_membership::NodeId;

use crate::time::SimDuration;

/// Maximum number of traffic classes trackable per node.
pub const MAX_TRAFFIC_CLASSES: usize = 8;

/// A protocol-defined traffic class (index into per-class counters).
///
/// Protocols assign their own meaning; `pag-core` uses updates /
/// buffermaps / exchange control / monitoring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TrafficClass(pub u8);

impl TrafficClass {
    /// Catch-all class 0.
    pub const DEFAULT: TrafficClass = TrafficClass(0);
}

/// Byte and message counters of one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Total bytes sent.
    pub sent_bytes: u64,
    /// Total bytes received.
    pub recv_bytes: u64,
    /// Messages sent.
    pub sent_msgs: u64,
    /// Messages received.
    pub recv_msgs: u64,
    /// Bytes sent per traffic class.
    pub sent_by_class: [u64; MAX_TRAFFIC_CLASSES],
    /// Bytes received per traffic class.
    pub recv_by_class: [u64; MAX_TRAFFIC_CLASSES],
}

impl NodeStats {
    pub(crate) fn record_send(&mut self, bytes: usize, class: TrafficClass) {
        self.sent_bytes += bytes as u64;
        self.sent_msgs += 1;
        self.sent_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    pub(crate) fn record_recv(&mut self, bytes: usize, class: TrafficClass) {
        self.recv_bytes += bytes as u64;
        self.recv_msgs += 1;
        self.recv_by_class[class.0 as usize % MAX_TRAFFIC_CLASSES] += bytes as u64;
    }

    /// Total bandwidth over `duration` in kilobits per second, counting
    /// upload and download together (the paper's "bandwidth consumption").
    pub fn bandwidth_kbps(&self, duration: SimDuration) -> f64 {
        let secs = duration.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        (self.sent_bytes + self.recv_bytes) as f64 * 8.0 / 1000.0 / secs
    }

    /// Upload-only bandwidth in kbps.
    pub fn upload_kbps(&self, duration: SimDuration) -> f64 {
        let secs = duration.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.sent_bytes as f64 * 8.0 / 1000.0 / secs
    }
}

/// Result of a simulation run: traffic per node plus run metadata.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Simulated wall-clock duration.
    pub duration: SimDuration,
    /// Number of completed rounds.
    pub rounds: u64,
    /// Per-node statistics.
    pub per_node: BTreeMap<NodeId, NodeStats>,
}

impl SimReport {
    /// Per-node total bandwidth (up+down) in kbps, sorted ascending — the
    /// series behind the paper's CDF plots (Fig. 7).
    pub fn bandwidth_distribution_kbps(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .per_node
            .values()
            .map(|s| s.bandwidth_kbps(self.duration))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN bandwidth"));
        v
    }

    /// Mean per-node bandwidth in kbps.
    pub fn mean_bandwidth_kbps(&self) -> f64 {
        let v = self.bandwidth_distribution_kbps();
        if v.is_empty() {
            return 0.0;
        }
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Bandwidth value at `percentile` (0–100) of the node distribution.
    ///
    /// # Panics
    ///
    /// Panics if the report has no nodes or `percentile` is outside 0–100.
    pub fn percentile_bandwidth_kbps(&self, percentile: f64) -> f64 {
        assert!((0.0..=100.0).contains(&percentile), "percentile in 0-100");
        let v = self.bandwidth_distribution_kbps();
        assert!(!v.is_empty(), "no nodes in report");
        let idx = ((percentile / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx]
    }

    /// Sum of bytes sent across all nodes, per traffic class.
    pub fn total_sent_by_class(&self) -> [u64; MAX_TRAFFIC_CLASSES] {
        let mut out = [0u64; MAX_TRAFFIC_CLASSES];
        for s in self.per_node.values() {
            for (acc, v) in out.iter_mut().zip(s.sent_by_class.iter()) {
                *acc += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let mut s = NodeStats::default();
        s.record_send(1000, TrafficClass::DEFAULT);
        s.record_recv(1000, TrafficClass(1));
        // 2000 bytes over 1 second = 16 kbps.
        assert_eq!(s.bandwidth_kbps(SimDuration::from_secs(1)), 16.0);
        assert_eq!(s.upload_kbps(SimDuration::from_secs(1)), 8.0);
        assert_eq!(s.sent_by_class[0], 1000);
        assert_eq!(s.recv_by_class[1], 1000);
    }

    #[test]
    fn zero_duration_is_zero_bandwidth() {
        let mut s = NodeStats::default();
        s.record_send(1000, TrafficClass::DEFAULT);
        assert_eq!(s.bandwidth_kbps(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn report_distribution_and_percentiles() {
        let mut per_node = BTreeMap::new();
        for i in 0..10u32 {
            let mut s = NodeStats::default();
            s.record_send(((i + 1) * 125) as usize, TrafficClass::DEFAULT); // 1..10 kbit
            per_node.insert(NodeId(i), s);
        }
        let report = SimReport {
            duration: SimDuration::from_secs(1),
            rounds: 1,
            per_node,
        };
        let dist = report.bandwidth_distribution_kbps();
        assert_eq!(dist.len(), 10);
        assert!(dist.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert_eq!(report.percentile_bandwidth_kbps(0.0), dist[0]);
        assert_eq!(report.percentile_bandwidth_kbps(100.0), dist[9]);
        let mean = report.mean_bandwidth_kbps();
        assert!((mean - 5.5).abs() < 1e-9);
    }

    #[test]
    fn class_overflow_wraps_into_range() {
        let mut s = NodeStats::default();
        s.record_send(10, TrafficClass(200));
        assert_eq!(s.sent_by_class[200 % MAX_TRAFFIC_CLASSES], 10);
    }
}
