//! The event queue: a min-heap ordered by (time, sequence number).

use std::cmp::Ordering;

use pag_membership::NodeId;

use crate::stats::TrafficClass;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub(crate) enum EventKind<M> {
    /// A node's gossip round begins.
    RoundStart(u64),
    /// A message arrives at its destination.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Payload.
        msg: M,
        /// Wire size for receive-side accounting.
        bytes: usize,
        /// Traffic class for receive-side accounting.
        class: TrafficClass,
    },
    /// A protocol timer set via `Context::set_timer` expires.
    Timer(u64),
}

/// A scheduled event targeting one node.
#[derive(Clone, Debug)]
pub(crate) struct Event<M> {
    pub time: SimTime,
    /// Tie-breaker preserving scheduling order at equal times.
    pub seq: u64,
    pub node: NodeId,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time_us: u64, seq: u64) -> Event<()> {
        Event {
            time: SimTime::from_micros(time_us),
            seq,
            node: NodeId(0),
            kind: EventKind::Timer(0),
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(300, 0));
        heap.push(ev(100, 1));
        heap.push(ev(200, 2));
        assert_eq!(heap.pop().unwrap().time.as_micros(), 100);
        assert_eq!(heap.pop().unwrap().time.as_micros(), 200);
        assert_eq!(heap.pop().unwrap().time.as_micros(), 300);
    }

    #[test]
    fn equal_times_fifo_by_seq() {
        let mut heap = BinaryHeap::new();
        heap.push(ev(100, 5));
        heap.push(ev(100, 3));
        heap.push(ev(100, 4));
        assert_eq!(heap.pop().unwrap().seq, 3);
        assert_eq!(heap.pop().unwrap().seq, 4);
        assert_eq!(heap.pop().unwrap().seq, 5);
    }
}
