//! The [`Protocol`] trait: the contract between a node implementation and
//! the simulation engine.

use pag_membership::NodeId;

use crate::context::Context;

/// Behaviour of one simulated node.
///
/// Implementations receive three kinds of callbacks:
/// round starts (the gossip clock), message deliveries, and expired
/// timers. All interaction with the world goes through the
/// [`Context`].
pub trait Protocol: Sized {
    /// The message type exchanged between nodes of this protocol.
    type Message;

    /// Called once at simulation start, before any round.
    fn on_init(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called at the beginning of every gossip round.
    fn on_round(&mut self, round: u64, ctx: &mut Context<'_, Self::Message>);

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<'_, Self::Message>);

    /// Called when a timer set via [`Context::set_timer`] expires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, Self::Message>) {
        let _ = (tag, ctx);
    }
}
