//! Deterministic discrete-event network simulator for the PAG
//! reproduction.
//!
//! Stands in for the paper's two evaluation substrates (see DESIGN.md):
//! the Grid'5000 deployment (48 machines × 9 processes = 432 nodes) and
//! the OMNeT++ simulations (1000+ nodes). Protocols implement
//! [`Protocol`]; the engine delivers rounds, messages and timers in
//! deterministic order and accounts every byte per node and per traffic
//! class — the paper's headline metric is per-node bandwidth consumption.
//!
//! Design choices:
//!
//! * **Deterministic**: one master seed derives every random stream
//!   (per-node protocol RNGs, latency sampling, loss). Same inputs, same
//!   report, bit for bit.
//! * **No congestion model**: the paper reports *offered* bandwidth
//!   against link capacities (Table II) rather than simulating queueing;
//!   the engine does the same, counting bytes without throttling.
//! * **Fail-stop faults**: nodes can crash at a round boundary
//!   ([`Simulation::schedule_crash`]) and links can drop messages with a
//!   configured probability, which exercises PAG's accusation path.
//!
//! # Examples
//!
//! ```
//! use pag_membership::NodeId;
//! use pag_simnet::{Context, Protocol, SimConfig, Simulation};
//!
//! /// Every round, node 0 pushes 1 kB to node 1.
//! struct Push;
//! impl Protocol for Push {
//!     type Message = ();
//!     fn on_round(&mut self, _round: u64, ctx: &mut Context<'_, ()>) {
//!         if ctx.id() == NodeId(0) {
//!             ctx.send(NodeId(1), (), 1000);
//!         }
//!     }
//!     fn on_message(&mut self, _: NodeId, _: (), _: &mut Context<'_, ()>) {}
//! }
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! sim.add_node(NodeId(0), Push);
//! sim.add_node(NodeId(1), Push);
//! let report = sim.run(10);
//! // 1 kB/s = 8 kbps of upload at node 0.
//! assert_eq!(report.per_node[&NodeId(0)].upload_kbps(report.duration), 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod event;
mod protocol;
mod sim;
mod stats;
mod time;

pub use context::Context;
pub use protocol::Protocol;
pub use sim::{SimConfig, Simulation};
pub use stats::{NodeStats, SimReport, TrafficClass, MAX_TRAFFIC_CLASSES};
pub use time::{SimDuration, SimTime};
