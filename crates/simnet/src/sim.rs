//! The simulation engine: a deterministic single-threaded discrete-event
//! loop over round starts, message deliveries and timers.

use std::collections::{BTreeMap, BinaryHeap, HashSet};

use pag_membership::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::context::Context;
use crate::event::{Event, EventKind};
use crate::protocol::Protocol;
use crate::stats::{NodeStats, SimReport};
use crate::time::{SimDuration, SimTime};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Gossip round duration (paper: 1 second).
    pub round_duration: SimDuration,
    /// Minimum one-way message latency.
    pub latency_min: SimDuration,
    /// Maximum one-way message latency (uniform in `[min, max]`).
    pub latency_max: SimDuration,
    /// Probability that a message is silently lost in transit.
    pub loss_probability: f64,
    /// Master seed; all per-node randomness derives from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            round_duration: SimDuration::from_secs(1),
            latency_min: SimDuration::from_millis(10),
            latency_max: SimDuration::from_millis(60),
            loss_probability: 0.0,
            seed: 0,
        }
    }
}

/// A deterministic discrete-event network simulation.
///
/// Stands in for both the paper's Grid'5000 deployment and its OMNeT++
/// simulations (see DESIGN.md): the protocol under test runs unmodified
/// message flows while the engine accounts every byte.
///
/// # Examples
///
/// ```
/// use pag_simnet::{Context, Protocol, SimConfig, Simulation};
/// use pag_membership::NodeId;
///
/// struct Ping;
/// impl Protocol for Ping {
///     type Message = u32;
///     fn on_round(&mut self, round: u64, ctx: &mut Context<'_, u32>) {
///         let peer = NodeId((ctx.id().value() + 1) % 2);
///         ctx.send(peer, round as u32, 100);
///     }
///     fn on_message(&mut self, _from: NodeId, _msg: u32, _ctx: &mut Context<'_, u32>) {}
/// }
///
/// let mut sim = Simulation::new(SimConfig::default());
/// sim.add_node(NodeId(0), Ping);
/// sim.add_node(NodeId(1), Ping);
/// let report = sim.run(5);
/// assert_eq!(report.rounds, 5);
/// assert!(report.mean_bandwidth_kbps() > 0.0);
/// ```
pub struct Simulation<P: Protocol> {
    config: SimConfig,
    nodes: BTreeMap<NodeId, P>,
    rngs: BTreeMap<NodeId, StdRng>,
    stats: BTreeMap<NodeId, NodeStats>,
    crashed: HashSet<NodeId>,
    crash_schedule: Vec<(u64, NodeId)>,
    queue: BinaryHeap<Event<P::Message>>,
    latency_rng: StdRng,
    seq: u64,
    now: SimTime,
}

impl<P: Protocol> Simulation<P> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let latency_rng = StdRng::seed_from_u64(config.seed ^ 0x1a7e_9c1e);
        Simulation {
            config,
            nodes: BTreeMap::new(),
            rngs: BTreeMap::new(),
            stats: BTreeMap::new(),
            crashed: HashSet::new(),
            crash_schedule: Vec::new(),
            queue: BinaryHeap::new(),
            latency_rng,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Registers a node running `protocol`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate identifiers.
    pub fn add_node(&mut self, id: NodeId, protocol: P) {
        let prev = self.nodes.insert(id, protocol);
        assert!(prev.is_none(), "duplicate node {id}");
        self.rngs.insert(
            id,
            StdRng::seed_from_u64(self.config.seed ^ pag_membership::mix(id.value() as u64)),
        );
        self.stats.insert(id, NodeStats::default());
    }

    /// Schedules `node` to crash (stop processing) at the start of `round`.
    ///
    /// Models fail-stop omission faults; messages to a crashed node are
    /// dropped after send-side accounting, like a dead TCP peer.
    pub fn schedule_crash(&mut self, node: NodeId, round: u64) {
        self.crash_schedule.push((round, node));
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(&id)
    }

    /// Iterates over `(id, protocol)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes.iter().map(|(&id, p)| (id, p))
    }

    /// Consumes the simulation, returning final protocol states.
    pub fn into_nodes(self) -> BTreeMap<NodeId, P> {
        self.nodes
    }

    /// Runs `rounds` gossip rounds and returns the traffic report.
    ///
    /// Determinism: identical configuration, node set and protocol logic
    /// produce bit-identical reports.
    pub fn run(&mut self, rounds: u64) -> SimReport {
        let node_ids: Vec<NodeId> = self.nodes.keys().copied().collect();

        // Init callbacks at t=0.
        for &id in &node_ids {
            self.dispatch(id, |p, ctx| p.on_init(ctx), 0);
        }

        // Schedule every round start upfront (exact boundaries; the paper
        // assumes roughly synchronized nodes).
        for r in 0..rounds {
            let t = SimTime::ZERO + self.config.round_duration * r;
            for &id in &node_ids {
                self.seq += 1;
                self.queue.push(Event {
                    time: t,
                    seq: self.seq,
                    node: id,
                    kind: EventKind::RoundStart(r),
                });
            }
        }

        let end = SimTime::ZERO + self.config.round_duration * rounds;
        while let Some(ev) = self.queue.pop() {
            if ev.time >= end {
                break;
            }
            self.now = ev.time;
            let round = (ev.time.as_micros() / self.config.round_duration.as_micros()).min(rounds);
            match ev.kind {
                EventKind::RoundStart(r) => {
                    self.apply_crashes(r);
                    if self.crashed.contains(&ev.node) {
                        continue;
                    }
                    self.dispatch(ev.node, |p, ctx| p.on_round(r, ctx), r);
                }
                EventKind::Deliver {
                    from,
                    msg,
                    bytes,
                    class,
                } => {
                    if self.crashed.contains(&ev.node) {
                        continue;
                    }
                    if let Some(stats) = self.stats.get_mut(&ev.node) {
                        stats.record_recv(bytes, class);
                    }
                    self.dispatch(ev.node, |p, ctx| p.on_message(from, msg, ctx), round);
                }
                EventKind::Timer(tag) => {
                    if self.crashed.contains(&ev.node) {
                        continue;
                    }
                    self.dispatch(ev.node, |p, ctx| p.on_timer(tag, ctx), round);
                }
            }
        }

        SimReport {
            duration: self.config.round_duration * rounds,
            rounds,
            per_node: self.stats.clone(),
        }
    }

    fn apply_crashes(&mut self, round: u64) {
        for &(r, node) in &self.crash_schedule {
            if r <= round {
                self.crashed.insert(node);
            }
        }
    }

    /// Runs one callback and applies its buffered effects.
    fn dispatch<F>(&mut self, id: NodeId, f: F, round: u64)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Message>),
    {
        let Some(mut protocol) = self.nodes.remove(&id) else {
            return;
        };
        let rng = self.rngs.get_mut(&id).expect("rng exists for node");
        let mut ctx = Context::new(id, self.now, round, rng);
        f(&mut protocol, &mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timers = std::mem::take(&mut ctx.timers);
        self.nodes.insert(id, protocol);

        for out in outbox {
            if let Some(stats) = self.stats.get_mut(&id) {
                stats.record_send(out.bytes, out.class);
            }
            if self.config.loss_probability > 0.0
                && self.latency_rng.random::<f64>() < self.config.loss_probability
            {
                continue;
            }
            let latency = self.sample_latency();
            self.seq += 1;
            self.queue.push(Event {
                time: self.now + latency,
                seq: self.seq,
                node: out.to,
                kind: EventKind::Deliver {
                    from: id,
                    msg: out.msg,
                    bytes: out.bytes,
                    class: out.class,
                },
            });
        }
        for (delay, tag) in timers {
            self.seq += 1;
            self.queue.push(Event {
                time: self.now + delay,
                seq: self.seq,
                node: id,
                kind: EventKind::Timer(tag),
            });
        }
    }

    fn sample_latency(&mut self) -> SimDuration {
        let lo = self.config.latency_min.as_micros();
        let hi = self.config.latency_max.as_micros();
        if hi <= lo {
            return SimDuration::from_micros(lo);
        }
        SimDuration::from_micros(self.latency_rng.random_range(lo..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts everything it sees; replies to each message once.
    #[derive(Default)]
    struct Echo {
        rounds_seen: u64,
        messages_seen: u64,
        timers_seen: u64,
        peers: Vec<NodeId>,
    }

    impl Protocol for Echo {
        type Message = &'static str;

        fn on_init(&mut self, ctx: &mut Context<'_, Self::Message>) {
            ctx.set_timer(SimDuration::from_millis(500), 7);
        }

        fn on_round(&mut self, _round: u64, ctx: &mut Context<'_, Self::Message>) {
            self.rounds_seen += 1;
            for &p in &self.peers.clone() {
                ctx.send(p, "ping", 100);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<'_, Self::Message>) {
            self.messages_seen += 1;
            if msg == "ping" {
                ctx.send(from, "pong", 50);
            }
        }

        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<'_, Self::Message>) {
            assert_eq!(tag, 7);
            self.timers_seen += 1;
        }
    }

    fn two_node_sim(config: SimConfig) -> Simulation<Echo> {
        let mut sim = Simulation::new(config);
        sim.add_node(
            NodeId(0),
            Echo {
                peers: vec![NodeId(1)],
                ..Echo::default()
            },
        );
        sim.add_node(
            NodeId(1),
            Echo {
                peers: vec![NodeId(0)],
                ..Echo::default()
            },
        );
        sim
    }

    #[test]
    fn rounds_and_messages_flow() {
        let mut sim = two_node_sim(SimConfig::default());
        let report = sim.run(3);
        assert_eq!(report.rounds, 3);
        let n0 = sim.node(NodeId(0)).unwrap();
        assert_eq!(n0.rounds_seen, 3);
        // 3 pings received + 3 pongs received (latency << round duration).
        assert_eq!(n0.messages_seen, 6);
        assert_eq!(n0.timers_seen, 1);
    }

    #[test]
    fn byte_accounting_is_symmetric() {
        let mut sim = two_node_sim(SimConfig::default());
        let report = sim.run(2);
        let s0 = &report.per_node[&NodeId(0)];
        let s1 = &report.per_node[&NodeId(1)];
        // Symmetric workload: each sends 2 pings (100) + 2 pongs (50).
        assert_eq!(s0.sent_bytes, 300);
        assert_eq!(s1.sent_bytes, 300);
        assert_eq!(s0.recv_bytes, 300);
        assert_eq!(s0.sent_msgs, 4);
        assert_eq!(s0.recv_msgs, 4);
    }

    #[test]
    fn determinism_across_runs() {
        let r1 = two_node_sim(SimConfig::default()).run(5);
        let r2 = two_node_sim(SimConfig::default()).run(5);
        assert_eq!(
            r1.per_node[&NodeId(0)].sent_bytes,
            r2.per_node[&NodeId(0)].sent_bytes
        );
        assert_eq!(
            r1.per_node[&NodeId(1)].recv_msgs,
            r2.per_node[&NodeId(1)].recv_msgs
        );
    }

    #[test]
    fn total_loss_drops_everything() {
        let config = SimConfig {
            loss_probability: 1.0,
            ..SimConfig::default()
        };
        let mut sim = two_node_sim(config);
        let report = sim.run(2);
        // Sends are charged, nothing arrives.
        assert!(report.per_node[&NodeId(0)].sent_bytes > 0);
        assert_eq!(report.per_node[&NodeId(0)].recv_bytes, 0);
        assert_eq!(sim.node(NodeId(0)).unwrap().messages_seen, 0);
    }

    #[test]
    fn crashed_node_goes_silent() {
        let mut sim = two_node_sim(SimConfig::default());
        sim.schedule_crash(NodeId(1), 1);
        let report = sim.run(4);
        // Node 1 only participated in round 0.
        assert_eq!(sim.node(NodeId(1)).unwrap().rounds_seen, 1);
        // Node 0 keeps sending to the dead peer; bytes still charged.
        let s0 = &report.per_node[&NodeId(0)];
        assert_eq!(s0.sent_msgs, 4 + 1); // 4 pings + 1 pong (round 0)
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_node_rejected() {
        let mut sim: Simulation<Echo> = Simulation::new(SimConfig::default());
        sim.add_node(NodeId(0), Echo::default());
        sim.add_node(NodeId(0), Echo::default());
    }

    #[test]
    fn latency_within_bounds() {
        // Messages sent in round r arrive before round r+1 with default
        // latencies; verified indirectly by message counts in
        // rounds_and_messages_flow. Here: degenerate latency range.
        let config = SimConfig {
            latency_min: SimDuration::from_millis(5),
            latency_max: SimDuration::from_millis(5),
            ..SimConfig::default()
        };
        let mut sim = two_node_sim(config);
        sim.run(1);
        assert_eq!(sim.node(NodeId(0)).unwrap().messages_seen, 2);
    }
}
