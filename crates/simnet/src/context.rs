//! The context handed to protocol callbacks: the only way a node can act
//! on the simulated world.

use pag_membership::NodeId;
use rand::rngs::StdRng;

use crate::stats::TrafficClass;
use crate::time::{SimDuration, SimTime};

/// An outgoing message collected during a callback.
#[derive(Clone, Debug)]
pub(crate) struct Outgoing<M> {
    pub to: NodeId,
    pub msg: M,
    pub bytes: usize,
    pub class: TrafficClass,
}

/// Execution context of one protocol callback.
///
/// Sends and timers are buffered and applied by the engine after the
/// callback returns, keeping callbacks free of engine borrow concerns.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: NodeId,
    now: SimTime,
    round: u64,
    rng: &'a mut StdRng,
    pub(crate) outbox: Vec<Outgoing<M>>,
    pub(crate) timers: Vec<(SimDuration, u64)>,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(node: NodeId, now: SimTime, round: u64, rng: &'a mut StdRng) -> Self {
        Context {
            node,
            now,
            round,
            rng,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// The node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The round the simulation clock is currently in.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The node's deterministic random source.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to`, charging `bytes` to traffic class 0.
    pub fn send(&mut self, to: NodeId, msg: M, bytes: usize) {
        self.send_classified(to, msg, bytes, TrafficClass::DEFAULT);
    }

    /// Sends `msg` to `to`, charging `bytes` to `class`.
    pub fn send_classified(&mut self, to: NodeId, msg: M, bytes: usize, class: TrafficClass) {
        self.outbox.push(Outgoing {
            to,
            msg,
            bytes,
            class,
        });
    }

    /// Schedules `on_timer(tag)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }
}
