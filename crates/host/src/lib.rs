//! `pag-host` — a long-lived, authenticated, multi-session PAG host
//! with on-disk crash recovery (DESIGN.md §13; ROADMAP item 3).
//!
//! The runtime crates give one *session* a driver; this crate gives a
//! *process* a lifecycle around many of them:
//!
//! * **Authentication** comes from the transport layer: hosted TCP
//!   sessions establish every mesh link (and every reconnect) with the
//!   signed challenge/response handshake of `pag_core::handshake` —
//!   identity on a connection is proven against the session roster's
//!   RSA keys, never assumed from connection order. Unauthenticated or
//!   bad-proof connections are severed and counted
//!   (`NodeMetrics::handshakes_rejected`) without wedging the accept
//!   loop.
//! * **Multiplexing** is the [`Host`]: a [`SessionRegistry`]-style API
//!   (spawn / list / watch / join / retire) over supervisor threads,
//!   each session still free to pick its own scheduler — dedicated
//!   threads or the shared worker pool. A [`pag_runtime::SessionWatch`]
//!   per session exports live per-node status a client can poll while
//!   the session runs.
//! * **Persistence** is the [`SnapshotStore`]: crash-entering nodes
//!   vault their [`pag_core::snapshot::NodeSnapshot`] to disk (atomic
//!   temp-file + rename, versioned header), and a restarted host —
//!   a new [`Host`] over the same directory — re-handshakes and reloads
//!   that state at `Input::Recover` time, rejoining the session
//!   unconvicted instead of blank.
//! * **Observability** is [`Host::metrics_text`]: a Prometheus
//!   text-format scrape page rendered from each session's live watch —
//!   rounds, protocol counters, traffic, and (for sessions run with
//!   `pag_runtime::TraceConfig` tracing on) the flight recorder's
//!   latency summaries (DESIGN.md §14).
//!
//! Hooks never alter engine inputs, and handshake traffic is never
//! charged to protocol accounting, so a hosted session's verdicts,
//! deliveries, traffic and crypto ops are bit-identical to the same
//! session run standalone — the host suite pins this.

#![warn(missing_docs)]

pub mod host;
mod metrics;
pub mod store;

pub use host::{Host, HostError, SessionInfo};
pub use store::{SnapshotStore, StoreError, STORE_MAGIC, STORE_VERSION};

/// Alias documented for discoverability: the registry *is* the [`Host`]
/// (spawn / list / watch / join / retire live on it directly).
pub type SessionRegistry = Host;
