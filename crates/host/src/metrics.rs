//! Prometheus text-format export of the host's live session state
//! (DESIGN.md §14).
//!
//! [`crate::Host::metrics_text`] renders every registered session's
//! last-published [`NodeStatus`] snapshots — round progress, protocol
//! metric counters, crypto-op counters, traffic, and (for traced
//! sessions) the flight-recorder latency summaries — as one
//! version-0.0.4 exposition page a scraper can ingest directly. The
//! rendering is pure: it reads watch snapshots, never touches the
//! running workers, and a session that publishes nothing simply
//! contributes no node samples.
//!
//! Sample families are grouped under a single `# HELP`/`# TYPE` header
//! each (the exposition format requires this), so the renderer first
//! collects every session's snapshot into [`SessionRow`]s and then
//! walks the rows once per family.

use std::collections::BTreeMap;

use pag_membership::NodeId;
use pag_obs::prom;
use pag_runtime::NodeStatus;

/// One session's scrape-time state, snapshotted from its watch.
pub(crate) struct SessionRow {
    /// Registry id (the `session` label).
    pub id: u64,
    /// Protocol session id (`PagConfig::session_id`).
    pub protocol_session: u64,
    /// Whether the supervisor thread has finished.
    pub finished: bool,
    /// Every node's last published status.
    pub nodes: BTreeMap<NodeId, NodeStatus>,
}

/// Appends a counter/gauge family: one header, then one sample per
/// `(labels, value)` row produced by `f` across all sessions.
fn family(
    out: &mut String,
    rows: &[SessionRow],
    name: &str,
    help: &str,
    ty: &str,
    f: impl Fn(&SessionRow, &mut dyn FnMut(&[(&str, &str)], u64)),
) {
    prom::header(out, name, help, ty);
    for row in rows {
        f(row, &mut |labels, value| {
            prom::sample(out, name, &prom::labels(labels), value)
        });
    }
}

/// Appends a per-node counter family whose value is a function of the
/// node's status.
fn node_family(
    out: &mut String,
    rows: &[SessionRow],
    name: &str,
    help: &str,
    value: impl Fn(&NodeStatus) -> u64,
) {
    family(out, rows, name, help, "counter", |row, emit| {
        let session = row.id.to_string();
        for (node, status) in &row.nodes {
            emit(
                &[("session", &session), ("node", &node.to_string())],
                value(status),
            );
        }
    });
}

/// Renders the full exposition page for `rows`.
pub(crate) fn render(rows: &[SessionRow]) -> String {
    let mut out = String::new();

    family(
        &mut out,
        rows,
        "pag_host_session",
        "Registered sessions; value is 1 while running, 0 once finished.",
        "gauge",
        |row, emit| {
            emit(
                &[
                    ("session", &row.id.to_string()),
                    ("protocol_session", &row.protocol_session.to_string()),
                ],
                u64::from(!row.finished),
            )
        },
    );

    family(
        &mut out,
        rows,
        "pag_session_min_round",
        "Lowest round any node of the session has entered.",
        "gauge",
        |row, emit| {
            if let Some(min) = row.nodes.values().map(|s| s.round).min() {
                emit(&[("session", &row.id.to_string())], min);
            }
        },
    );

    family(
        &mut out,
        rows,
        "pag_node_round",
        "Round the node most recently entered.",
        "gauge",
        |row, emit| {
            let session = row.id.to_string();
            for (node, status) in &row.nodes {
                emit(
                    &[("session", &session), ("node", &node.to_string())],
                    status.round,
                );
            }
        },
    );

    node_family(
        &mut out,
        rows,
        "pag_node_delivered_total",
        "Distinct updates delivered so far.",
        |s| s.metrics.delivered.len() as u64,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_exchanges_total",
        "Accountability exchanges completed.",
        |s| s.metrics.exchanges_completed,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_duplicate_payloads_total",
        "Duplicate payloads received.",
        |s| s.metrics.duplicate_payloads,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_accusations_total",
        "Accusations this node sent.",
        |s| s.metrics.accusations_sent,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_frames_rejected_total",
        "Malformed or unverifiable frames rejected.",
        |s| s.metrics.frames_rejected,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_connections_dropped_total",
        "Transport connections dropped.",
        |s| s.metrics.connections_dropped,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_links_severed_total",
        "Mesh links severed.",
        |s| s.metrics.links_severed,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_links_reconnected_total",
        "Mesh links re-established after a sever.",
        |s| s.metrics.links_reconnected,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_recoveries_total",
        "Crash recoveries performed.",
        |s| s.metrics.recoveries,
    );
    node_family(
        &mut out,
        rows,
        "pag_node_handshakes_rejected_total",
        "Authentication handshakes rejected.",
        |s| s.metrics.handshakes_rejected,
    );

    family(
        &mut out,
        rows,
        "pag_node_crypto_ops_total",
        "Crypto operations performed, by class.",
        "counter",
        |row, emit| {
            let session = row.id.to_string();
            for (node, status) in &row.nodes {
                let node = node.to_string();
                for (op, count) in [
                    ("hash", status.metrics.ops.hashes),
                    ("sign", status.metrics.ops.signatures),
                    ("verify", status.metrics.ops.verifications),
                    ("prime", status.metrics.ops.primes),
                ] {
                    emit(
                        &[("session", &session), ("node", &node), ("op", op)],
                        count,
                    );
                }
            }
        },
    );

    family(
        &mut out,
        rows,
        "pag_node_traffic_bytes_total",
        "Protocol bytes on the wire, by direction.",
        "counter",
        |row, emit| {
            let session = row.id.to_string();
            for (node, status) in &row.nodes {
                let node = node.to_string();
                for (dir, bytes) in [
                    ("sent", status.traffic.sent_bytes),
                    ("recv", status.traffic.recv_bytes),
                ] {
                    emit(
                        &[("session", &session), ("node", &node), ("direction", dir)],
                        bytes,
                    );
                }
            }
        },
    );

    family(
        &mut out,
        rows,
        "pag_node_traffic_msgs_total",
        "Protocol messages on the wire, by direction.",
        "counter",
        |row, emit| {
            let session = row.id.to_string();
            for (node, status) in &row.nodes {
                let node = node.to_string();
                for (dir, msgs) in [
                    ("sent", status.traffic.sent_msgs),
                    ("recv", status.traffic.recv_msgs),
                ] {
                    emit(
                        &[("session", &session), ("node", &node), ("direction", dir)],
                        msgs,
                    );
                }
            }
        },
    );

    // Flight-recorder latency summaries, present only for traced
    // sessions. Each of the five instruments is its own family.
    for (key, help) in [
        ("round_wall", "Round wall time, microseconds."),
        ("barrier_stall", "Lockstep barrier / run-queue stall, microseconds."),
        ("sign", "Signature production latency, microseconds."),
        ("verify", "Signature verification latency, microseconds."),
        ("hash", "Homomorphic hash latency, microseconds."),
    ] {
        let name = format!("pag_node_{key}_us");
        prom::header(&mut out, &name, help, "summary");
        for row in rows {
            let session = row.id.to_string();
            for (node, status) in &row.nodes {
                let Some(lat) = &status.lat else { continue };
                let summary = lat
                    .named()
                    .into_iter()
                    .find(|(n, _)| *n == key)
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                prom::hist_summary(
                    &mut out,
                    &name,
                    &[("session", &session), ("node", &node.to_string())],
                    &summary,
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pag_core::NodeMetrics;
    use pag_runtime::NodeTraffic;

    fn row() -> SessionRow {
        let mut metrics = NodeMetrics {
            exchanges_completed: 3,
            ..NodeMetrics::default()
        };
        metrics.ops.signatures = 7;
        let traffic = NodeTraffic {
            sent_bytes: 512,
            ..NodeTraffic::default()
        };
        let mut nodes = BTreeMap::new();
        nodes.insert(NodeId(2), NodeStatus::untraced(4, metrics, traffic));
        SessionRow {
            id: 1,
            protocol_session: 99,
            finished: false,
            nodes,
        }
    }

    /// Golden sample lines: label shape and family grouping are pinned
    /// so a scraper config written against this page keeps working.
    #[test]
    fn render_pins_sample_shape() {
        let page = render(&[row()]);
        for expected in [
            "# TYPE pag_host_session gauge",
            "pag_host_session{session=\"1\",protocol_session=\"99\"} 1",
            "pag_session_min_round{session=\"1\"} 4",
            "pag_node_round{session=\"1\",node=\"n2\"} 4",
            "pag_node_exchanges_total{session=\"1\",node=\"n2\"} 3",
            "pag_node_crypto_ops_total{session=\"1\",node=\"n2\",op=\"sign\"} 7",
            "pag_node_traffic_bytes_total{session=\"1\",node=\"n2\",direction=\"sent\"} 512",
        ] {
            assert!(page.contains(expected), "missing {expected:?} in:\n{page}");
        }
        // Untraced nodes contribute no latency summaries, but the
        // family headers still render (empty families are legal).
        assert!(page.contains("# TYPE pag_node_round_wall_us summary"));
        assert!(!page.contains("pag_node_round_wall_us_count"));
    }

    /// Every header appears exactly once — samples of a family must be
    /// contiguous under it for the format to be valid.
    #[test]
    fn headers_are_unique() {
        let two = [row(), {
            let mut r = row();
            r.id = 2;
            r
        }];
        let page = render(&two);
        let headers: Vec<&str> = page.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut dedup = headers.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(headers.len(), dedup.len(), "duplicate family header");
        assert!(page.contains("pag_node_round{session=\"2\",node=\"n2\"} 4"));
    }
}
