//! The host proper: a session registry over one process (DESIGN.md §13).
//!
//! A [`Host`] owns a base directory and a registry of running sessions.
//! [`Host::spawn`] wires each session's driver with [`HostHooks`] — a
//! per-protocol-session [`SnapshotStore`] as the vault and a fresh
//! [`SessionWatch`] as the live status stream — then runs
//! `try_run_session` on a dedicated supervisor thread. Node-level
//! concurrency inside each session still belongs to that session's
//! scheduler (thread-per-node or the PR 5 worker pool); the host adds
//! the *session*-level multiplexing: many sessions, one process, one
//! store tree, one registry to poll.
//!
//! Snapshot stores are keyed by the **protocol** session id
//! (`PagConfig::session_id`), not the registry id — that is what makes
//! a restarted host find the snapshots its previous incarnation wrote:
//! open a new `Host` over the same directory, spawn the same protocol
//! session, and every node scheduled to recover loads its state from
//! disk instead of rejoining blank (and instead of being convicted).
//! Two *concurrent* sessions must therefore use distinct protocol
//! session ids, which they need anyway for key separation.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pag_runtime::{
    try_run_session, Driver, HostHooks, SessionConfig, SessionError, SessionOutcome, SessionWatch,
};

use crate::store::{SnapshotStore, StoreError};

/// Why the host could not start a session.
#[derive(Debug)]
pub enum HostError {
    /// The session's snapshot store could not be opened.
    Store(StoreError),
    /// The supervisor thread could not be spawned.
    Spawn(io::Error),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::Store(e) => write!(f, "opening the session snapshot store failed: {e}"),
            HostError::Spawn(e) => write!(f, "spawning the session supervisor failed: {e}"),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Store(e) => Some(e),
            HostError::Spawn(e) => Some(e),
        }
    }
}

impl From<StoreError> for HostError {
    fn from(e: StoreError) -> Self {
        HostError::Store(e)
    }
}

/// One registered session: its live watch and the supervisor thread
/// that will eventually yield the outcome.
struct SessionHandle {
    protocol_session: u64,
    watch: Arc<SessionWatch>,
    thread: JoinHandle<Result<SessionOutcome, SessionError>>,
}

/// A registry row as reported by [`Host::list`].
#[derive(Clone, Debug)]
pub struct SessionInfo {
    /// The registry id [`Host::spawn`] returned.
    pub id: u64,
    /// The protocol session id (`PagConfig::session_id`) it runs.
    pub protocol_session: u64,
    /// Whether the supervisor thread has finished (outcome ready to
    /// [`Host::join`] without blocking).
    pub finished: bool,
}

/// A long-lived multi-session PAG host.
pub struct Host {
    dir: PathBuf,
    next_id: AtomicU64,
    sessions: Mutex<BTreeMap<u64, SessionHandle>>,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("dir", &self.dir)
            .field("sessions", &self.list().len())
            .finish()
    }
}

impl Host {
    /// Opens a host over `dir` (created if missing). The directory is
    /// the durable half of the host: a second `Host` opened over the
    /// same path later — the restarted process — inherits every
    /// snapshot the first one persisted.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Host, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(StoreError::Io)?;
        Ok(Host {
            dir,
            next_id: AtomicU64::new(1),
            sessions: Mutex::new(BTreeMap::new()),
        })
    }

    /// The host's base directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot store of protocol session `protocol_session` —
    /// the same directory [`Host::spawn`] wires into that session's
    /// vault. Useful for inspecting what a crashed node persisted.
    pub fn store(&self, protocol_session: u64) -> Result<SnapshotStore, StoreError> {
        SnapshotStore::open(self.dir.join(format!("s{protocol_session}")))
    }

    /// Starts `sc` as a hosted session and returns its registry id.
    ///
    /// The driver config's hooks are replaced with the host's: the
    /// session's snapshot vault (threaded and TCP drivers; the simnet
    /// driver is a pure in-process model with no host integration and
    /// runs unhooked) and a fresh [`SessionWatch`]. The session itself
    /// runs on a supervisor thread via `try_run_session`; collect it
    /// with [`Host::join`].
    pub fn spawn(&self, mut sc: SessionConfig) -> Result<u64, HostError> {
        let protocol_session = sc.pag.session_id;
        let store = self.store(protocol_session)?;
        let watch = SessionWatch::new();
        let hooks = HostHooks {
            vault: Some(Arc::new(store)),
            watch: Some(Arc::clone(&watch)),
            // The recorder itself is resolved by the session layer from
            // `sc.trace`, so hosted sessions trace exactly like
            // standalone ones; the host reads the results back through
            // the watch (see `metrics_text`).
            trace: None,
        };
        match &mut sc.driver {
            Driver::Threaded(tc) => tc.hooks = hooks,
            Driver::Tcp(tc) => tc.hooks = hooks,
            Driver::Simnet(_) => {}
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let thread = std::thread::Builder::new()
            .name(format!("pag-host-s{id}"))
            .spawn(move || try_run_session(sc))
            .map_err(HostError::Spawn)?;
        let handle = SessionHandle {
            protocol_session,
            watch,
            thread,
        };
        self.lock().insert(id, handle);
        Ok(id)
    }

    /// Every registered session, in spawn order.
    pub fn list(&self) -> Vec<SessionInfo> {
        self.lock()
            .iter()
            .map(|(&id, h)| SessionInfo {
                id,
                protocol_session: h.protocol_session,
                finished: h.thread.is_finished(),
            })
            .collect()
    }

    /// The live status stream of session `id`: per-node round progress,
    /// metrics and traffic, republished at every round entry. `None`
    /// for unknown (or already joined/retired) ids.
    pub fn watch(&self, id: u64) -> Option<Arc<SessionWatch>> {
        self.lock().get(&id).map(|h| Arc::clone(&h.watch))
    }

    /// Waits for session `id` to finish and removes it from the
    /// registry, returning its outcome (or typed setup error). `None`
    /// for unknown ids. A panic on the session thread — an engine
    /// invariant violation — is resumed here, payload intact.
    pub fn join(&self, id: u64) -> Option<Result<SessionOutcome, SessionError>> {
        let handle = self.lock().remove(&id)?;
        match handle.thread.join() {
            Ok(outcome) => Some(outcome),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Renders every registered session's live status as one
    /// Prometheus text-format page (version 0.0.4 exposition): session
    /// liveness, per-node round/metric/traffic counters, and — for
    /// traced sessions — the flight-recorder latency summaries
    /// (DESIGN.md §14). Pure observation: reads watch snapshots only.
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.rows(None))
    }

    /// Renders the scrape page of session `id` alone. `None` for
    /// unknown (or already joined/retired) ids.
    pub fn session_metrics_text(&self, id: u64) -> Option<String> {
        let rows = self.rows(Some(id));
        if rows.is_empty() {
            return None;
        }
        Some(crate::metrics::render(&rows))
    }

    /// Snapshots the registry into scrape rows (all sessions, or one).
    fn rows(&self, only: Option<u64>) -> Vec<crate::metrics::SessionRow> {
        self.lock()
            .iter()
            .filter(|(&id, _)| only.is_none_or(|want| want == id))
            .map(|(&id, h)| crate::metrics::SessionRow {
                id,
                protocol_session: h.protocol_session,
                finished: h.thread.is_finished(),
                nodes: h.watch.snapshot(),
            })
            .collect()
    }

    /// Drops session `id` from the registry without waiting: the
    /// supervisor thread keeps running detached (Rust threads cannot be
    /// killed) but its outcome is discarded on completion. Returns
    /// whether the id was known.
    pub fn retire(&self, id: u64) -> bool {
        self.lock().remove(&id).is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, SessionHandle>> {
        self.sessions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
