//! The on-disk snapshot store (DESIGN.md §13).
//!
//! One directory per protocol session, one file per node:
//! `n<id>.snap`, holding a 5-byte store header — the magic `PAGS`
//! followed by a store-format version byte — and then the
//! [`NodeSnapshot`] codec bytes (which carry their *own* version; the
//! two version spaces evolve independently: the store header guards the
//! file envelope, the snapshot version guards the state layout).
//!
//! Writes are atomic: the bytes go to `n<id>.snap.tmp` first and are
//! renamed over the final name, so a crash mid-write leaves either the
//! previous complete snapshot or a stray `.tmp` — never a torn file
//! under the real name. [`SnapshotStore::open`] sweeps those strays on
//! startup.
//!
//! Reads are paranoid: missing files are `Ok(None)` (a node that never
//! crashed has nothing on disk), but short files, wrong magic, unknown
//! versions and undecodable snapshot bytes are all typed
//! [`StoreError`]s — a corrupt store degrades a restart to in-memory
//! recovery, it never panics a host and never fabricates state.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pag_core::snapshot::{NodeSnapshot, SnapshotError};
use pag_membership::NodeId;
use pag_runtime::SnapshotVault;

/// File magic every snapshot file starts with.
pub const STORE_MAGIC: [u8; 4] = *b"PAGS";

/// Store envelope version. Bump on header/layout changes of the *file*;
/// the embedded snapshot codec versions itself separately.
pub const STORE_VERSION: u8 = 1;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem refused (permissions, disk full, vanished dir...).
    Io(io::Error),
    /// The file does not start with [`STORE_MAGIC`] — not a snapshot.
    BadMagic,
    /// The store envelope version is one this build does not know.
    Version(u8),
    /// The file ended inside the 5-byte store header.
    Truncated,
    /// The header was fine but the snapshot bytes would not decode.
    Snapshot(SnapshotError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store io: {e}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::Version(v) => {
                write!(f, "unknown store version {v} (supported: {STORE_VERSION})")
            }
            StoreError::Truncated => write!(f, "snapshot file truncated inside the store header"),
            StoreError::Snapshot(e) => write!(f, "snapshot bytes corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A directory of per-node snapshot files for one protocol session.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store at `dir` and sweeps any
    /// `.tmp` files a crashed writer left behind.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                // A partial write from a previous incarnation: the
                // rename never happened, so the real file (if any) is
                // still the last complete snapshot. Drop the stray.
                let _ = fs::remove_file(&path);
            }
        }
        Ok(SnapshotStore { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final path of `node`'s snapshot file.
    pub fn path_of(&self, node: NodeId) -> PathBuf {
        self.dir.join(format!("n{}.snap", node.value()))
    }

    /// Persists `snap` atomically: full bytes to a `.tmp` sibling, then
    /// a rename over the final name.
    pub fn persist(&self, snap: &NodeSnapshot) -> Result<(), StoreError> {
        let mut bytes = Vec::with_capacity(5 + 64);
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.push(STORE_VERSION);
        bytes.extend_from_slice(&snap.encode());
        let target = self.path_of(snap.id);
        let tmp = self.dir.join(format!("n{}.snap.tmp", snap.id.value()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &target)?;
        Ok(())
    }

    /// Reads back `node`'s snapshot. `Ok(None)` when no file exists;
    /// every malformed file is a typed error, never a panic.
    pub fn retrieve(&self, node: NodeId) -> Result<Option<NodeSnapshot>, StoreError> {
        let bytes = match fs::read(self.path_of(node)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if bytes.len() < 5 {
            return Err(StoreError::Truncated);
        }
        if bytes[..4] != STORE_MAGIC {
            return Err(StoreError::BadMagic);
        }
        if bytes[4] != STORE_VERSION {
            return Err(StoreError::Version(bytes[4]));
        }
        let snap = NodeSnapshot::decode(&bytes[5..]).map_err(StoreError::Snapshot)?;
        Ok(Some(snap))
    }
}

/// The vault boundary is infallible by contract (persistence trouble
/// must never alter protocol behaviour), so errors are logged here and
/// collapse to "nothing persisted" / "nothing found".
impl SnapshotVault for SnapshotStore {
    fn save(&self, snap: &NodeSnapshot) -> bool {
        match self.persist(snap) {
            Ok(()) => true,
            Err(e) => {
                pag_obs::logger::warn(
                    "host.store_save",
                    format_args!("persisting snapshot of {} failed: {e}", snap.id),
                );
                false
            }
        }
    }

    fn load(&self, node: NodeId) -> Option<NodeSnapshot> {
        match self.retrieve(node) {
            Ok(found) => found,
            Err(e) => {
                pag_obs::logger::warn(
                    "host.store_load",
                    format_args!("loading snapshot of {node} failed: {e}"),
                );
                None
            }
        }
    }
}
