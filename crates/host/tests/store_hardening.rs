//! Snapshot-store hardening: the disk round-trip holds for arbitrary
//! snapshots, and every way a file can be wrong — corrupt bytes, a
//! truncated tail, an unknown version, a writer that died mid-write —
//! is a typed [`StoreError`], never a panic and never fabricated state.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pag_core::snapshot::{NodeSnapshot, SnapshotError, SNAPSHOT_VERSION};
use pag_host::{SnapshotStore, StoreError, STORE_VERSION};
use pag_membership::NodeId;
use pag_runtime::SnapshotVault;
use proptest::prelude::*;

/// A fresh scratch directory per call, unique within and across test
/// processes.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pag-store-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample(id: u32) -> NodeSnapshot {
    NodeSnapshot {
        id: NodeId(id),
        epoch: 2,
        rounds_entered: 9,
        open_sends: vec![(8, NodeId(1)), (9, NodeId(4))],
        open_receives: vec![(9, NodeId(2))],
        monitored: vec![NodeId(0), NodeId(5)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary snapshots survive the full disk round-trip bit-exact.
    #[test]
    fn disk_round_trip(
        id in 0u32..1000,
        epoch in any::<u64>(),
        rounds_entered in any::<u64>(),
        open_sends in proptest::collection::vec((any::<u64>(), 0u32..1000), 0..10),
        open_receives in proptest::collection::vec((any::<u64>(), 0u32..1000), 0..10),
        monitored in proptest::collection::vec(0u32..1000, 0..10),
    ) {
        let snap = NodeSnapshot {
            id: NodeId(id),
            epoch,
            rounds_entered,
            open_sends: open_sends.into_iter().map(|(r, n)| (r, NodeId(n))).collect(),
            open_receives: open_receives.into_iter().map(|(r, n)| (r, NodeId(n))).collect(),
            monitored: monitored.into_iter().map(NodeId).collect(),
        };
        let store = SnapshotStore::open(scratch("rt")).expect("open store");
        store.persist(&snap).expect("persist");
        let back = store.retrieve(snap.id).expect("retrieve").expect("present");
        prop_assert_eq!(back, snap);
        let _ = fs::remove_dir_all(store.dir());
    }
}

#[test]
fn missing_file_is_none_not_an_error() {
    let store = SnapshotStore::open(scratch("missing")).expect("open store");
    assert!(store.retrieve(NodeId(3)).expect("clean miss").is_none());
    let _ = fs::remove_dir_all(store.dir());
}

#[test]
fn corrupt_magic_version_and_lengths_are_typed_errors() {
    let store = SnapshotStore::open(scratch("corrupt")).expect("open store");
    let snap = sample(7);
    store.persist(&snap).expect("persist");
    let path = store.path_of(snap.id);
    let clean = fs::read(&path).expect("read back");

    // Magic byte flipped: not a snapshot file.
    let mut bad = clean.clone();
    bad[0] ^= 0xFF;
    fs::write(&path, &bad).unwrap();
    assert!(matches!(store.retrieve(snap.id), Err(StoreError::BadMagic)));

    // Unknown store envelope version.
    let mut bad = clean.clone();
    bad[4] = STORE_VERSION + 1;
    fs::write(&path, &bad).unwrap();
    assert!(matches!(
        store.retrieve(snap.id),
        Err(StoreError::Version(v)) if v == STORE_VERSION + 1
    ));

    // Unknown *snapshot* codec version inside a valid envelope.
    let mut bad = clean.clone();
    bad[5] = SNAPSHOT_VERSION + 1;
    fs::write(&path, &bad).unwrap();
    assert!(matches!(
        store.retrieve(snap.id),
        Err(StoreError::Snapshot(SnapshotError::Version(_)))
    ));

    // A list length prefix inflated to promise more entries than the
    // file holds: the snapshot codec reports truncation, typed.
    let mut bad = clean.clone();
    let sends_len_at = 5 + 1 + 4 + 8 + 8; // header + version + id + epoch + rounds
    bad[sends_len_at..sends_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&path, &bad).unwrap();
    assert!(matches!(
        store.retrieve(snap.id),
        Err(StoreError::Snapshot(SnapshotError::Truncated))
    ));

    let _ = fs::remove_dir_all(store.dir());
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let store = SnapshotStore::open(scratch("trunc")).expect("open store");
    let snap = sample(5);
    store.persist(&snap).expect("persist");
    let path = store.path_of(snap.id);
    let clean = fs::read(&path).expect("read back");
    for cut in 0..clean.len() {
        fs::write(&path, &clean[..cut]).unwrap();
        match store.retrieve(snap.id) {
            Err(StoreError::Truncated) => assert!(cut < 5, "header error past the header at {cut}"),
            Err(StoreError::Snapshot(SnapshotError::Truncated)) => {
                assert!(cut >= 5, "snapshot error inside the header at {cut}")
            }
            other => panic!("prefix of {cut} bytes must not load: {other:?}"),
        }
    }
    let _ = fs::remove_dir_all(store.dir());
}

#[test]
fn partial_write_is_swept_and_never_shadows_the_real_snapshot() {
    let dir = scratch("partial");
    let store = SnapshotStore::open(&dir).expect("open store");
    let snap = sample(9);
    store.persist(&snap).expect("persist");
    // A writer that died between `write` and `rename` leaves a .tmp
    // sibling; the real file is still the last complete snapshot.
    let stray = dir.join("n9.snap.tmp");
    fs::write(&stray, b"PAGS\x01half a snapsh").unwrap();
    drop(store);

    // The restarted store sweeps the stray and still serves the real
    // snapshot.
    let store = SnapshotStore::open(&dir).expect("reopen store");
    assert!(!stray.exists(), "stray tmp file survived the sweep");
    let back = store.retrieve(snap.id).expect("retrieve").expect("present");
    assert_eq!(back, snap);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn vault_boundary_logs_and_degrades_instead_of_failing() {
    let dir = scratch("vault");
    let store = SnapshotStore::open(&dir).expect("open store");
    let snap = sample(2);
    assert!(SnapshotVault::save(&store, &snap), "healthy save succeeds");
    assert_eq!(SnapshotVault::load(&store, snap.id), Some(snap.clone()));

    // Corrupt file: the vault boundary answers None (logged), never Err
    // and never a panic — a restarted node degrades to in-memory
    // recovery.
    fs::write(store.path_of(snap.id), b"garbage").unwrap();
    assert_eq!(SnapshotVault::load(&store, snap.id), None);

    // Store directory ripped out from under the vault: save reports
    // false, the session keeps running.
    fs::remove_dir_all(&dir).unwrap();
    assert!(!SnapshotVault::save(&store, &snap), "doomed save reports false");
}
