//! The host acceptance suite (DESIGN.md §13):
//!
//! * two concurrent authenticated TCP sessions on one host produce
//!   verdicts, deliveries, traffic and crypto ops **bit-identical** to
//!   the same sessions run standalone — hosting (hooks, vault, watch)
//!   is observably free;
//! * a node's host process "killed" mid-session persists its snapshot,
//!   and a *restarted* host over the same directory reloads it and
//!   rejoins the session recovered, never convicted;
//! * the registry lifecycle (spawn / list / watch / join / retire)
//!   behaves.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pag_host::Host;
use pag_membership::NodeId;
use pag_runtime::{
    try_run_session, Driver, FaultEvent, SessionConfig, SessionOutcome, TcpConfig,
};

fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pag-host-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// An authenticated 10-node TCP lockstep session.
fn tcp_session(session_id: u64, seed: u64, rounds: u64) -> SessionConfig {
    let mut sc = SessionConfig::honest(10, rounds);
    sc.pag.stream_rate_kbps = 30.0;
    sc.pag.session_id = session_id;
    sc.driver = Driver::Tcp(TcpConfig {
        lockstep: true,
        seed,
        ..TcpConfig::default()
    });
    sc
}

/// Full observable equality between a hosted and a standalone run.
fn assert_same_outcome(hosted: &SessionOutcome, alone: &SessionOutcome, what: &str) {
    let verdicts = |o: &SessionOutcome| -> BTreeSet<(NodeId, NodeId, u64, String)> {
        o.verdicts
            .iter()
            .map(|v| (v.monitor, v.accused, v.round, format!("{:?}", v.fault)))
            .collect()
    };
    assert_eq!(verdicts(hosted), verdicts(alone), "verdicts diverge: {what}");
    assert_eq!(hosted.creations, alone.creations, "source stream diverges: {what}");
    assert_eq!(hosted.metrics.len(), alone.metrics.len(), "node sets diverge: {what}");
    for (id, m_hosted) in &hosted.metrics {
        let m_alone = &alone.metrics[id];
        assert_eq!(m_hosted.delivered, m_alone.delivered, "deliveries at {id}: {what}");
        assert_eq!(m_hosted.ops, m_alone.ops, "crypto ops at {id}: {what}");
        assert_eq!(m_hosted.recoveries, m_alone.recoveries, "recoveries at {id}: {what}");
    }
    for (id, t_hosted) in &hosted.report.per_node {
        let t_alone = &alone.report.per_node[id];
        assert_eq!(t_hosted.sent_bytes, t_alone.sent_bytes, "sent bytes at {id}: {what}");
        assert_eq!(t_hosted.recv_bytes, t_alone.recv_bytes, "recv bytes at {id}: {what}");
    }
}

/// Two authenticated sessions multiplexed on one host, concurrently,
/// each bit-identical to its standalone run; the watch streams live
/// per-node status while they run.
#[test]
fn two_concurrent_hosted_sessions_match_standalone_runs() {
    let rounds = 6;
    let alone_a = try_run_session(tcp_session(41, 0xA11CE, rounds)).expect("standalone a");
    let alone_b = try_run_session(tcp_session(42, 0xB0B, rounds)).expect("standalone b");

    let host = Host::open(scratch("pair")).expect("open host");
    let id_a = host.spawn(tcp_session(41, 0xA11CE, rounds)).expect("spawn a");
    let id_b = host.spawn(tcp_session(42, 0xB0B, rounds)).expect("spawn b");

    // Registry reflects both, with their protocol session ids.
    let listed = host.list();
    assert_eq!(listed.len(), 2);
    assert_eq!(
        listed.iter().map(|s| (s.id, s.protocol_session)).collect::<Vec<_>>(),
        vec![(id_a, 41), (id_b, 42)]
    );

    // The live status stream is pollable mid-run (the sessions are
    // running right now, on their own threads).
    let watch_a = host.watch(id_a).expect("watch a");

    let hosted_a = host.join(id_a).expect("known id").expect("session a runs");
    let hosted_b = host.join(id_b).expect("known id").expect("session b runs");

    // After the run the watch holds every node's final published
    // status: all 10 nodes, all at the last round.
    let statuses = watch_a.snapshot();
    assert_eq!(statuses.len(), 10, "every node published status");
    for (id, status) in &statuses {
        assert_eq!(status.round, rounds - 1, "node {id} stalled early");
        // Status is published at round *entry*, so it trails the final
        // outcome by at most the last round's deliveries.
        assert!(
            status.metrics.delivered.len() <= hosted_a.metrics[id].delivered.len(),
            "watch metrics ahead of the outcome at {id}"
        );
    }
    let delivered_live: usize = statuses
        .iter()
        .filter(|(id, _)| **id != NodeId(0))
        .map(|(_, s)| s.metrics.delivered.len())
        .sum();
    assert!(delivered_live > 0, "the watch never saw deliveries");

    assert_same_outcome(&hosted_a, &alone_a, "session a hosted vs standalone");
    assert_same_outcome(&hosted_b, &alone_b, "session b hosted vs standalone");

    // Joined sessions leave the registry.
    assert!(host.list().is_empty());
    assert!(host.watch(id_a).is_none());
    let _ = fs::remove_dir_all(host.dir());
}

/// The crash-recovery tentpole: a node goes down mid-session, its
/// snapshot lands on the host's disk, and a **restarted host** (a new
/// `Host` over the same directory — the old one dropped, as a killed
/// process would be) finds that snapshot and replays the session with
/// the node recovering from disk — rejoining unconvicted, exactly one
/// recovery, same verdict-free outcome.
#[test]
fn killed_and_restarted_host_rejoins_from_disk_unconvicted() {
    let dir = scratch("restart");
    let rounds = 8;
    let crashed = NodeId(3);
    let mut sc = tcp_session(77, 0xC4A5, rounds);
    sc.faults = vec![FaultEvent::CrashRestart {
        node: crashed,
        crash_round: 2,
        restart_round: 5,
    }];

    // First incarnation: the session runs, node 3 crashes at round 2
    // and rejoins at round 5 — and the crash persisted a snapshot.
    let host = Host::open(&dir).expect("open host");
    let id = host.spawn(sc.clone()).expect("spawn");
    let outcome = host.join(id).expect("known id").expect("session runs");
    assert!(outcome.verdicts.is_empty(), "rejoin convicted: {:?}", outcome.verdicts);
    assert_eq!(outcome.metrics[&crashed].recoveries, 1, "exactly one recovery");
    let store = host.store(77).expect("session store");
    assert!(store.path_of(crashed).exists(), "no snapshot persisted");
    let snap = store.retrieve(crashed).expect("snapshot parses").expect("snapshot present");
    assert_eq!(snap.id, crashed);
    assert_eq!(snap.rounds_entered, 2, "snapshot taken at crash entry");

    // The host dies: drop it. The directory is all that survives —
    // exactly what a killed process leaves behind.
    drop(host);

    // Second incarnation over the same directory: the snapshot is
    // still loadable, and rerunning the session has the recovering
    // node load it from disk (the vault logs a load per Recover),
    // completing verdict-free again.
    let reborn = Host::open(&dir).expect("reopen host");
    let store = reborn.store(77).expect("session store");
    let snap = store.retrieve(crashed).expect("snapshot parses").expect("survived restart");
    assert_eq!(snap.id, crashed);
    let id = reborn.spawn(sc).expect("respawn");
    let outcome = reborn.join(id).expect("known id").expect("session reruns");
    assert!(outcome.verdicts.is_empty(), "restarted host convicted: {:?}", outcome.verdicts);
    assert_eq!(outcome.metrics[&crashed].recoveries, 1);
    let _ = fs::remove_dir_all(dir);
}

/// Retire drops a session from the registry without joining it; the
/// detached session still runs to completion on its own thread.
#[test]
fn retire_detaches_a_session() {
    let host = Host::open(scratch("retire")).expect("open host");
    let id = host.spawn(tcp_session(55, 0x5E55, 4)).expect("spawn");
    assert!(host.retire(id), "known session retires");
    assert!(!host.retire(id), "already gone");
    assert!(host.watch(id).is_none());
    assert!(host.join(id).is_none());
    let _ = fs::remove_dir_all(host.dir());
}
